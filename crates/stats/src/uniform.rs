//! Continuous uniform distribution.

use crate::{ContinuousDistribution, StatsError};

/// Continuous uniform distribution on `[lo, hi]`.
///
/// Used mainly as a building block in tests and samplers; also a valid
/// mixture component for abrupt, bounded-duration transitions.
///
/// # Examples
///
/// ```
/// use resilience_stats::{ContinuousDistribution, Uniform};
/// let u = Uniform::new(2.0, 6.0)?;
/// assert_eq!(u.cdf(4.0), 0.5);
/// assert_eq!(u.mean(), Some(4.0));
/// # Ok::<(), resilience_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `lo < hi` and both
    /// are finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self, StatsError> {
        if !lo.is_finite() || !hi.is_finite() || !(lo < hi) {
            return Err(StatsError::InvalidParameter {
                what: "Uniform",
                param: "bounds",
                value: hi - lo,
                constraint: "lo < hi, both finite",
            });
        }
        Ok(Uniform { lo, hi })
    }

    /// Lower bound.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

impl ContinuousDistribution for Uniform {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi {
            0.0
        } else {
            1.0 / self.width()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        ((x - self.lo) / self.width()).clamp(0.0, 1.0)
    }

    fn quantile(&self, p: f64) -> Result<f64, StatsError> {
        if !(p > 0.0 && p < 1.0) {
            return Err(StatsError::InvalidProbability {
                what: "Uniform::quantile",
                value: p,
            });
        }
        Ok(self.lo + p * self.width())
    }

    fn mean(&self) -> Option<f64> {
        Some(0.5 * (self.lo + self.hi))
    }

    fn variance(&self) -> Option<f64> {
        Some(self.width() * self.width() / 12.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_bounds() {
        assert!(Uniform::new(1.0, 1.0).is_err());
        assert!(Uniform::new(2.0, 1.0).is_err());
        assert!(Uniform::new(f64::NEG_INFINITY, 0.0).is_err());
    }

    #[test]
    fn cdf_clamps() {
        let u = Uniform::new(0.0, 2.0).unwrap();
        assert_eq!(u.cdf(-1.0), 0.0);
        assert_eq!(u.cdf(3.0), 1.0);
        assert_eq!(u.cdf(0.5), 0.25);
    }

    #[test]
    fn pdf_flat_inside_zero_outside() {
        let u = Uniform::new(1.0, 3.0).unwrap();
        assert_eq!(u.pdf(2.0), 0.5);
        assert_eq!(u.pdf(0.999), 0.0);
        assert_eq!(u.pdf(3.001), 0.0);
    }

    #[test]
    fn quantile_linear() {
        let u = Uniform::new(10.0, 20.0).unwrap();
        assert_eq!(u.quantile(0.25).unwrap(), 12.5);
        assert!(u.quantile(0.0).is_err());
    }

    #[test]
    fn moments() {
        let u = Uniform::new(0.0, 12.0).unwrap();
        assert_eq!(u.mean(), Some(6.0));
        assert_eq!(u.variance(), Some(12.0));
    }
}
