//! Error type for statistical routines.

use resilience_math::MathError;
use std::fmt;

/// Errors produced by `resilience-stats`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StatsError {
    /// A distribution parameter violated its domain (e.g. non-positive
    /// rate or scale).
    InvalidParameter {
        /// Distribution or routine name.
        what: &'static str,
        /// Parameter name.
        param: &'static str,
        /// Offending value.
        value: f64,
        /// What the parameter must satisfy.
        constraint: &'static str,
    },
    /// A probability argument was outside `[0, 1]` (or an open subinterval
    /// where required).
    InvalidProbability {
        /// Routine name.
        what: &'static str,
        /// Offending value.
        value: f64,
    },
    /// Input data was empty or too short for the requested statistic.
    NotEnoughData {
        /// Routine name.
        what: &'static str,
        /// Number of observations required.
        needed: usize,
        /// Number of observations provided.
        got: usize,
    },
    /// An underlying numerical routine failed.
    Numerical(MathError),
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidParameter {
                what,
                param,
                value,
                constraint,
            } => write!(
                f,
                "{what}: parameter {param} = {value} violates {constraint}"
            ),
            StatsError::InvalidProbability { what, value } => {
                write!(f, "{what}: probability {value} outside valid range")
            }
            StatsError::NotEnoughData { what, needed, got } => {
                write!(f, "{what}: needs at least {needed} observations, got {got}")
            }
            StatsError::Numerical(e) => write!(f, "numerical error: {e}"),
        }
    }
}

impl std::error::Error for StatsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StatsError::Numerical(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MathError> for StatsError {
    fn from(e: MathError) -> Self {
        StatsError::Numerical(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_parameter() {
        let e = StatsError::InvalidParameter {
            what: "Weibull",
            param: "shape",
            value: -1.0,
            constraint: "shape > 0",
        };
        assert!(e.to_string().contains("Weibull"));
        assert!(e.to_string().contains("shape > 0"));
    }

    #[test]
    fn from_math_error_preserves_source() {
        use std::error::Error;
        let e = StatsError::from(MathError::domain("f", "bad"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
