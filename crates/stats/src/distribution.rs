//! The [`ContinuousDistribution`] trait.
//!
//! The mixture resilience model (paper Eq. 7) composes arbitrary CDFs
//! `F₁`, `F₂`; this trait is the abstraction that lets
//! `resilience-core::mixture` accept any distribution in this crate — or a
//! user-defined one — as a degradation or recovery component.

use crate::StatsError;
use resilience_math::roots;

/// A continuous probability distribution on (a subset of) the real line.
///
/// Implementors must provide [`pdf`](ContinuousDistribution::pdf) and
/// [`cdf`](ContinuousDistribution::cdf); everything else has default
/// implementations in terms of those two, with closed forms overridden
/// where available.
///
/// # Conventions
///
/// * `cdf` must be nondecreasing with limits 0 and 1; evaluation outside
///   the support clamps rather than errors (e.g. `Exponential::cdf(-1.0)`
///   is 0), which is what the mixture model needs when it sweeps `t` from
///   the hazard time onward.
/// * `quantile(p)` requires `p ∈ (0, 1)` and returns
///   [`StatsError::InvalidProbability`] otherwise.
pub trait ContinuousDistribution {
    /// Probability density function at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative distribution function at `x`.
    fn cdf(&self, x: f64) -> f64;

    /// Natural log of the density; defaults to `ln(pdf)`.
    fn ln_pdf(&self, x: f64) -> f64 {
        self.pdf(x).ln()
    }

    /// Survival (reliability) function `S(x) = 1 − F(x)`.
    ///
    /// Override when a cancellation-free form exists.
    fn survival(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Hazard (failure-rate) function `h(x) = f(x) / S(x)`.
    fn hazard(&self, x: f64) -> f64 {
        let s = self.survival(x);
        if s <= 0.0 {
            f64::INFINITY
        } else {
            self.pdf(x) / s
        }
    }

    /// Cumulative hazard `H(x) = −ln S(x)`.
    fn cumulative_hazard(&self, x: f64) -> f64 {
        -self.survival(x).ln()
    }

    /// Quantile function (inverse CDF) at probability `p ∈ (0, 1)`.
    ///
    /// The default implementation inverts the CDF numerically with Brent's
    /// method over an expanding bracket; distributions with closed-form
    /// inverses override it.
    ///
    /// # Errors
    ///
    /// * [`StatsError::InvalidProbability`] when `p ∉ (0, 1)`.
    /// * [`StatsError::Numerical`] when bracketing or root finding fails.
    fn quantile(&self, p: f64) -> Result<f64, StatsError> {
        if !(p > 0.0 && p < 1.0) {
            return Err(StatsError::InvalidProbability {
                what: "quantile",
                value: p,
            });
        }
        let f = |x: f64| self.cdf(x) - p;
        let (lo, hi) = roots::bracket_root(f, 0.0, 1.0, 200)?;
        let root = roots::brent(f, lo, hi, 1e-12, 200)?;
        Ok(root.x)
    }

    /// Mean of the distribution, when it exists.
    fn mean(&self) -> Option<f64>;

    /// Variance of the distribution, when it exists.
    fn variance(&self) -> Option<f64>;

    /// Standard deviation, when the variance exists.
    fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal triangular-ish distribution implemented through the trait
    /// defaults to exercise them.
    struct HalfLine;

    impl ContinuousDistribution for HalfLine {
        fn pdf(&self, x: f64) -> f64 {
            if x < 0.0 {
                0.0
            } else {
                (-x).exp()
            }
        }

        fn cdf(&self, x: f64) -> f64 {
            if x < 0.0 {
                0.0
            } else {
                1.0 - (-x).exp()
            }
        }

        fn mean(&self) -> Option<f64> {
            Some(1.0)
        }

        fn variance(&self) -> Option<f64> {
            Some(1.0)
        }
    }

    #[test]
    fn default_survival_and_hazard() {
        let d = HalfLine;
        assert!((d.survival(1.0) - (-1.0f64).exp()).abs() < 1e-12);
        // Exponential hazard is constant 1.
        assert!((d.hazard(0.5) - 1.0).abs() < 1e-10);
        assert!((d.hazard(3.0) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn default_cumulative_hazard() {
        let d = HalfLine;
        assert!((d.cumulative_hazard(2.0) - 2.0).abs() < 1e-10);
    }

    #[test]
    fn default_quantile_inverts_cdf() {
        let d = HalfLine;
        for &p in &[0.1, 0.5, 0.9, 0.99] {
            let x = d.quantile(p).unwrap();
            assert!((d.cdf(x) - p).abs() < 1e-9, "p = {p}");
        }
    }

    #[test]
    fn quantile_rejects_bad_probability() {
        let d = HalfLine;
        assert!(d.quantile(0.0).is_err());
        assert!(d.quantile(1.0).is_err());
        assert!(d.quantile(-0.5).is_err());
        assert!(d.quantile(f64::NAN).is_err());
    }

    #[test]
    fn std_dev_from_variance() {
        let d = HalfLine;
        assert_eq!(d.std_dev(), Some(1.0));
    }

    #[test]
    fn hazard_is_infinite_past_support() {
        struct Bounded;
        impl ContinuousDistribution for Bounded {
            fn pdf(&self, x: f64) -> f64 {
                if (0.0..1.0).contains(&x) {
                    1.0
                } else {
                    0.0
                }
            }
            fn cdf(&self, x: f64) -> f64 {
                x.clamp(0.0, 1.0)
            }
            fn mean(&self) -> Option<f64> {
                Some(0.5)
            }
            fn variance(&self) -> Option<f64> {
                Some(1.0 / 12.0)
            }
        }
        assert_eq!(Bounded.hazard(2.0), f64::INFINITY);
    }
}
