//! Empirical cumulative distribution functions.

use crate::StatsError;

/// An empirical CDF built from a sample.
///
/// Used by the test suite to validate samplers against their parent
/// distributions (Kolmogorov–Smirnov-style checks) and available to users
/// who want a nonparametric degradation/recovery component in the mixture
/// model.
///
/// # Examples
///
/// ```
/// use resilience_stats::EmpiricalCdf;
/// let cdf = EmpiricalCdf::new(vec![3.0, 1.0, 2.0])?;
/// assert_eq!(cdf.eval(0.5), 0.0);
/// assert_eq!(cdf.eval(1.0), 1.0 / 3.0);
/// assert_eq!(cdf.eval(2.5), 2.0 / 3.0);
/// assert_eq!(cdf.eval(9.0), 1.0);
/// # Ok::<(), resilience_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds an empirical CDF from a sample.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NotEnoughData`] for an empty sample and
    /// [`StatsError::InvalidParameter`] when the sample contains NaN.
    pub fn new(mut sample: Vec<f64>) -> Result<Self, StatsError> {
        if sample.is_empty() {
            return Err(StatsError::NotEnoughData {
                what: "EmpiricalCdf",
                needed: 1,
                got: 0,
            });
        }
        if sample.iter().any(|v| v.is_nan()) {
            return Err(StatsError::InvalidParameter {
                what: "EmpiricalCdf",
                param: "sample",
                value: f64::NAN,
                constraint: "no NaN values",
            });
        }
        sample.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
        Ok(EmpiricalCdf { sorted: sample })
    }

    /// Evaluates `F̂(x) = (#{ x_i ≤ x }) / n`.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Number of observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always `false` (construction rejects empty samples); provided for
    /// API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted sample.
    #[must_use]
    pub fn sorted_sample(&self) -> &[f64] {
        &self.sorted
    }

    /// Kolmogorov–Smirnov statistic against a reference CDF:
    /// `sup_x |F̂(x) − F(x)|` evaluated at the jump points.
    pub fn ks_statistic<F: Fn(f64) -> f64>(&self, reference: F) -> f64 {
        let n = self.sorted.len() as f64;
        let mut d: f64 = 0.0;
        for (i, &x) in self.sorted.iter().enumerate() {
            let f = reference(x);
            let before = i as f64 / n;
            let after = (i + 1) as f64 / n;
            d = d.max((f - before).abs()).max((after - f).abs());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_nan() {
        assert!(EmpiricalCdf::new(vec![]).is_err());
        assert!(EmpiricalCdf::new(vec![1.0, f64::NAN]).is_err());
    }

    #[test]
    fn step_function_values() {
        let cdf = EmpiricalCdf::new(vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert_eq!(cdf.eval(0.0), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(2.0), 0.75); // duplicates both counted
        assert_eq!(cdf.eval(3.9), 0.75);
        assert_eq!(cdf.eval(4.0), 1.0);
    }

    #[test]
    fn len_and_sorted() {
        let cdf = EmpiricalCdf::new(vec![3.0, 1.0, 2.0]).unwrap();
        assert_eq!(cdf.len(), 3);
        assert!(!cdf.is_empty());
        assert_eq!(cdf.sorted_sample(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn ks_statistic_zero_against_self_like_cdf() {
        // Sample at the quantile midpoints of U(0,1) has tiny KS distance.
        let n = 1000;
        let sample: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let cdf = EmpiricalCdf::new(sample).unwrap();
        let d = cdf.ks_statistic(|x| x.clamp(0.0, 1.0));
        assert!(d < 1.0 / n as f64 + 1e-12);
    }

    #[test]
    fn ks_statistic_detects_wrong_reference() {
        let sample: Vec<f64> = (0..100).map(|i| (i as f64 + 0.5) / 100.0).collect();
        let cdf = EmpiricalCdf::new(sample).unwrap();
        // Compare against a very different CDF (point mass near 0).
        let d = cdf.ks_statistic(|x| if x >= 0.0 { 1.0 } else { 0.0 });
        assert!(d > 0.9);
    }
}
