//! Weibull distribution.

use crate::{ContinuousDistribution, StatsError};
use resilience_math::special::ln_gamma;

/// Weibull distribution with shape `k > 0` and scale `λ > 0`.
///
/// This is the richer mixture component of the paper (its Eq. 23):
/// `F(t) = 1 − exp(−(t/λ)^k)` for `t ≥ 0`. With `k = 1` it reduces to
/// [`crate::Exponential`]; `k > 1` gives the S-shaped recovery ramps that
/// make the Wei-Exp / Exp-Wei / Wei-Wei mixtures outperform Exp-Exp in the
/// paper's Table III.
///
/// # Examples
///
/// ```
/// use resilience_stats::{ContinuousDistribution, Weibull};
/// let w = Weibull::new(2.0, 5.0)?;
/// // At t = λ the CDF is 1 − 1/e regardless of shape.
/// assert!((w.cdf(5.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-15);
/// # Ok::<(), resilience_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull distribution with shape `k` and scale `λ`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless both parameters are
    /// finite and positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self, StatsError> {
        if !(shape > 0.0) || !shape.is_finite() {
            return Err(StatsError::InvalidParameter {
                what: "Weibull",
                param: "shape",
                value: shape,
                constraint: "shape > 0 and finite",
            });
        }
        if !(scale > 0.0) || !scale.is_finite() {
            return Err(StatsError::InvalidParameter {
                what: "Weibull",
                param: "scale",
                value: scale,
                constraint: "scale > 0 and finite",
            });
        }
        Ok(Weibull { shape, scale })
    }

    /// The shape parameter `k`.
    #[must_use]
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter `λ`.
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl ContinuousDistribution for Weibull {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            // Density at zero: 0 for k > 1, λ⁻¹ for k = 1, +∞ for k < 1.
            return match self.shape.partial_cmp(&1.0) {
                Some(std::cmp::Ordering::Greater) => 0.0,
                Some(std::cmp::Ordering::Equal) => 1.0 / self.scale,
                _ => f64::INFINITY,
            };
        }
        let z = x / self.scale;
        (self.shape / self.scale) * z.powf(self.shape - 1.0) * (-z.powf(self.shape)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-(x / self.scale).powf(self.shape)).exp_m1()
        }
    }

    fn survival(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            (-(x / self.scale).powf(self.shape)).exp()
        }
    }

    fn hazard(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            return self.pdf(0.0) * 1.0; // S(0) = 1
        }
        let z = x / self.scale;
        (self.shape / self.scale) * z.powf(self.shape - 1.0)
    }

    fn cumulative_hazard(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            (x / self.scale).powf(self.shape)
        }
    }

    fn quantile(&self, p: f64) -> Result<f64, StatsError> {
        if !(p > 0.0 && p < 1.0) {
            return Err(StatsError::InvalidProbability {
                what: "Weibull::quantile",
                value: p,
            });
        }
        Ok(self.scale * (-(-p).ln_1p()).powf(1.0 / self.shape))
    }

    fn mean(&self) -> Option<f64> {
        let g = ln_gamma(1.0 + 1.0 / self.shape).ok()?.exp();
        Some(self.scale * g)
    }

    fn variance(&self) -> Option<f64> {
        let g1 = ln_gamma(1.0 + 1.0 / self.shape).ok()?.exp();
        let g2 = ln_gamma(1.0 + 2.0 / self.shape).ok()?.exp();
        Some(self.scale * self.scale * (g2 - g1 * g1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Weibull::new(0.0, 1.0).is_err());
        assert!(Weibull::new(1.0, 0.0).is_err());
        assert!(Weibull::new(-2.0, 1.0).is_err());
        assert!(Weibull::new(1.0, f64::NAN).is_err());
    }

    #[test]
    fn reduces_to_exponential_at_shape_one() {
        let w = Weibull::new(1.0, 2.0).unwrap();
        let e = crate::Exponential::new(0.5).unwrap();
        for &x in &[0.0, 0.5, 1.0, 4.0, 10.0] {
            assert!((w.cdf(x) - e.cdf(x)).abs() < 1e-14, "x = {x}");
            assert!((w.pdf(x) - e.pdf(x)).abs() < 1e-14, "x = {x}");
        }
    }

    #[test]
    fn pdf_integrates_to_cdf_difference() {
        // Integrate away from the k < 1 endpoint singularity and compare
        // against the CDF increment, which is exact.
        for &(k, lam) in &[(0.8, 1.0), (1.5, 2.0), (3.0, 0.7)] {
            let w = Weibull::new(k, lam).unwrap();
            let (a, b) = (0.05 * lam, 10.0 * lam);
            let total =
                resilience_math::quad::adaptive_simpson(|x| w.pdf(x), a, b, 1e-11, 40).unwrap();
            let want = w.cdf(b) - w.cdf(a);
            assert!(
                (total - want).abs() < 1e-8,
                "k={k}, λ={lam}: {total} vs {want}"
            );
        }
    }

    #[test]
    fn hazard_shapes() {
        // k < 1: decreasing hazard; k = 1: constant; k > 1: increasing.
        let dec = Weibull::new(0.5, 1.0).unwrap();
        assert!(dec.hazard(0.5) > dec.hazard(2.0));
        let con = Weibull::new(1.0, 1.0).unwrap();
        assert!((con.hazard(0.5) - con.hazard(2.0)).abs() < 1e-14);
        let inc = Weibull::new(2.0, 1.0).unwrap();
        assert!(inc.hazard(0.5) < inc.hazard(2.0));
    }

    #[test]
    fn quantile_roundtrip() {
        let w = Weibull::new(1.7, 3.2).unwrap();
        for &p in &[0.01, 0.1, 0.5, 0.9, 0.99] {
            let x = w.quantile(p).unwrap();
            assert!((w.cdf(x) - p).abs() < 1e-12, "p = {p}");
        }
        assert!(w.quantile(1.0).is_err());
    }

    #[test]
    fn mean_special_cases() {
        // k = 1: mean = λ. k = 2: mean = λ·√π/2.
        let w1 = Weibull::new(1.0, 3.0).unwrap();
        assert!((w1.mean().unwrap() - 3.0).abs() < 1e-12);
        let w2 = Weibull::new(2.0, 3.0).unwrap();
        assert!((w2.mean().unwrap() - 3.0 * std::f64::consts::PI.sqrt() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn variance_positive_and_matches_k1() {
        let w = Weibull::new(1.0, 2.0).unwrap();
        assert!((w.variance().unwrap() - 4.0).abs() < 1e-10);
        let w2 = Weibull::new(3.3, 1.1).unwrap();
        assert!(w2.variance().unwrap() > 0.0);
    }

    #[test]
    fn density_at_zero_by_shape() {
        assert_eq!(Weibull::new(2.0, 1.0).unwrap().pdf(0.0), 0.0);
        assert_eq!(Weibull::new(1.0, 2.0).unwrap().pdf(0.0), 0.5);
        assert_eq!(Weibull::new(0.5, 1.0).unwrap().pdf(0.0), f64::INFINITY);
    }

    #[test]
    fn cumulative_hazard_matches_survival() {
        let w = Weibull::new(2.5, 4.0).unwrap();
        for &x in &[0.5, 1.0, 5.0] {
            assert!((w.cumulative_hazard(x) + w.survival(x).ln()).abs() < 1e-12);
        }
    }

    #[test]
    fn accessors() {
        let w = Weibull::new(2.0, 5.0).unwrap();
        assert_eq!(w.shape(), 2.0);
        assert_eq!(w.scale(), 5.0);
    }
}
