//! Critical values and confidence-interval helpers.
//!
//! The paper's confidence band (its Eq. 12–13) is
//! `ΔP(t_i) ± z_{1−α/2}·σ` with `σ² = SSE/(n−2)`; this module supplies the
//! critical values and a reusable symmetric-interval helper. Student-t
//! critical values are also provided for small-sample users, along with a
//! nonparametric bootstrap percentile interval (an extension the paper
//! lists as future work).

use crate::{ContinuousDistribution, Normal, StatsError};
use resilience_math::roots;
use resilience_math::special::reg_inc_beta;

/// Two-sided standard-normal critical value `z_{1−α/2}`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidProbability`] unless `alpha ∈ (0, 1)`.
///
/// # Examples
///
/// ```
/// use resilience_stats::inference::z_critical;
/// let z = z_critical(0.05)?; // 95 % confidence
/// assert!((z - 1.959963984540054).abs() < 1e-8);
/// # Ok::<(), resilience_stats::StatsError>(())
/// ```
pub fn z_critical(alpha: f64) -> Result<f64, StatsError> {
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(StatsError::InvalidProbability {
            what: "z_critical",
            value: alpha,
        });
    }
    Normal::standard().quantile(1.0 - alpha / 2.0)
}

/// CDF of Student's t distribution with `nu` degrees of freedom.
///
/// Evaluated through the regularized incomplete beta function.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] unless `nu > 0`.
pub fn t_cdf(x: f64, nu: f64) -> Result<f64, StatsError> {
    if !(nu > 0.0) || !nu.is_finite() {
        return Err(StatsError::InvalidParameter {
            what: "t_cdf",
            param: "nu",
            value: nu,
            constraint: "nu > 0 and finite",
        });
    }
    if x == 0.0 {
        return Ok(0.5);
    }
    let z = nu / (nu + x * x);
    let half_tail = 0.5 * reg_inc_beta(z, nu / 2.0, 0.5)?;
    Ok(if x > 0.0 { 1.0 - half_tail } else { half_tail })
}

/// Two-sided Student-t critical value `t_{1−α/2, ν}`.
///
/// # Errors
///
/// * [`StatsError::InvalidProbability`] unless `alpha ∈ (0, 1)`.
/// * [`StatsError::InvalidParameter`] unless `nu > 0`.
///
/// # Examples
///
/// ```
/// use resilience_stats::inference::t_critical;
/// // t_{0.975, 10} = 2.228138852
/// let t = t_critical(0.05, 10.0)?;
/// assert!((t - 2.228138852).abs() < 1e-6);
/// # Ok::<(), resilience_stats::StatsError>(())
/// ```
pub fn t_critical(alpha: f64, nu: f64) -> Result<f64, StatsError> {
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(StatsError::InvalidProbability {
            what: "t_critical",
            value: alpha,
        });
    }
    let target = 1.0 - alpha / 2.0;
    // t quantile via root finding: monotone CDF, bracket from the normal
    // quantile (t is heavier-tailed, so the t critical value is larger).
    let z = z_critical(alpha)?;
    let f = |x: f64| t_cdf(x, nu).unwrap_or(f64::NAN) - target;
    let hi = (z * 10.0).max(10.0);
    let root = roots::brent(f, 0.0, hi, 1e-12, 200)?;
    Ok(root.x)
}

/// A symmetric confidence interval `center ± half_width`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Interval center.
    pub center: f64,
    /// Interval half width (non-negative).
    pub half_width: f64,
}

impl ConfidenceInterval {
    /// Lower limit.
    #[must_use]
    pub fn lower(&self) -> f64 {
        self.center - self.half_width
    }

    /// Upper limit.
    #[must_use]
    pub fn upper(&self) -> f64 {
        self.center + self.half_width
    }

    /// Whether the interval contains `x` (inclusive).
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lower() && x <= self.upper()
    }

    /// Interval width.
    #[must_use]
    pub fn width(&self) -> f64 {
        2.0 * self.half_width
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:.6}, {:.6}]", self.lower(), self.upper())
    }
}

/// Builds the paper's Eq. 13 interval: `center ± z_{1−α/2}·σ`.
///
/// # Errors
///
/// * [`StatsError::InvalidProbability`] unless `alpha ∈ (0, 1)`.
/// * [`StatsError::InvalidParameter`] when `sigma` is negative or
///   non-finite.
///
/// # Examples
///
/// ```
/// use resilience_stats::inference::normal_interval;
/// let ci = normal_interval(0.0, 1.0, 0.05)?;
/// assert!(ci.contains(1.9));
/// assert!(!ci.contains(2.1));
/// # Ok::<(), resilience_stats::StatsError>(())
/// ```
pub fn normal_interval(
    center: f64,
    sigma: f64,
    alpha: f64,
) -> Result<ConfidenceInterval, StatsError> {
    if !(sigma >= 0.0) || !sigma.is_finite() {
        return Err(StatsError::InvalidParameter {
            what: "normal_interval",
            param: "sigma",
            value: sigma,
            constraint: "sigma >= 0 and finite",
        });
    }
    let z = z_critical(alpha)?;
    Ok(ConfidenceInterval {
        center,
        half_width: z * sigma,
    })
}

/// Percentile bootstrap interval from resampled statistics.
///
/// Given the statistic evaluated on `resamples`, returns the
/// `[α/2, 1−α/2]` percentile interval. This is the nonparametric
/// alternative to Eq. 13 listed as an extension in DESIGN.md §5.
///
/// # Errors
///
/// * [`StatsError::NotEnoughData`] when fewer than 10 resamples are given.
/// * [`StatsError::InvalidProbability`] unless `alpha ∈ (0, 1)`.
pub fn bootstrap_percentile_interval(
    resamples: &[f64],
    alpha: f64,
) -> Result<(f64, f64), StatsError> {
    if resamples.len() < 10 {
        return Err(StatsError::NotEnoughData {
            what: "bootstrap_percentile_interval",
            needed: 10,
            got: resamples.len(),
        });
    }
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(StatsError::InvalidProbability {
            what: "bootstrap_percentile_interval",
            value: alpha,
        });
    }
    let lo = crate::describe::quantile(resamples, alpha / 2.0)?;
    let hi = crate::describe::quantile(resamples, 1.0 - alpha / 2.0)?;
    Ok((lo, hi))
}

/// Asymptotic p-value of the one-sample Kolmogorov–Smirnov statistic:
/// `Q(λ) = 2·Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}` evaluated at
/// `λ = (√n + 0.12 + 0.11/√n)·d` (the Stephens correction).
///
/// Used by the residual diagnostics in `resilience-core` to judge
/// whether residuals are plausibly Gaussian.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] when `d ∉ [0, 1]` or
/// `n == 0`.
///
/// # Examples
///
/// ```
/// use resilience_stats::inference::ks_p_value;
/// // A tiny distance on a large sample is entirely consistent.
/// assert!(ks_p_value(0.01, 100)? > 0.99);
/// // A large distance is not.
/// assert!(ks_p_value(0.5, 100)? < 1e-6);
/// # Ok::<(), resilience_stats::StatsError>(())
/// ```
pub fn ks_p_value(d: f64, n: usize) -> Result<f64, StatsError> {
    if !(0.0..=1.0).contains(&d) {
        return Err(StatsError::InvalidParameter {
            what: "ks_p_value",
            param: "d",
            value: d,
            constraint: "d in [0, 1]",
        });
    }
    if n == 0 {
        return Err(StatsError::NotEnoughData {
            what: "ks_p_value",
            needed: 1,
            got: 0,
        });
    }
    if d == 0.0 {
        return Ok(1.0);
    }
    let sqrt_n = (n as f64).sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-16 {
            break;
        }
    }
    Ok((2.0 * sum).clamp(0.0, 1.0))
}

/// Empirical coverage: the fraction of `observed` values whose paired
/// interval contains them — the paper's EC measure.
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughData`] when the slices are empty or
/// lengths differ.
pub fn empirical_coverage(
    observed: &[f64],
    intervals: &[ConfidenceInterval],
) -> Result<f64, StatsError> {
    if observed.is_empty() || observed.len() != intervals.len() {
        return Err(StatsError::NotEnoughData {
            what: "empirical_coverage",
            needed: observed.len().max(1),
            got: intervals.len(),
        });
    }
    let inside = observed
        .iter()
        .zip(intervals)
        .filter(|(x, ci)| ci.contains(**x))
        .count();
    Ok(inside as f64 / observed.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_critical_reference_values() {
        assert!((z_critical(0.10).unwrap() - 1.644_853_626_951_472_7).abs() < 1e-8);
        assert!((z_critical(0.05).unwrap() - 1.959_963_984_540_054).abs() < 1e-8);
        assert!((z_critical(0.01).unwrap() - 2.575_829_303_548_901).abs() < 1e-8);
    }

    #[test]
    fn z_critical_rejects_bad_alpha() {
        assert!(z_critical(0.0).is_err());
        assert!(z_critical(1.0).is_err());
        assert!(z_critical(-0.1).is_err());
    }

    #[test]
    fn t_cdf_symmetry_and_center() {
        assert_eq!(t_cdf(0.0, 5.0).unwrap(), 0.5);
        let p = t_cdf(1.3, 7.0).unwrap();
        let q = t_cdf(-1.3, 7.0).unwrap();
        assert!((p + q - 1.0).abs() < 1e-12);
    }

    #[test]
    fn t_cdf_approaches_normal_for_large_nu() {
        let n = Normal::standard();
        for &x in &[-2.0, -0.5, 0.7, 1.96] {
            let t = t_cdf(x, 1e6).unwrap();
            assert!((t - n.cdf(x)).abs() < 1e-5, "x = {x}");
        }
    }

    #[test]
    fn t_critical_reference_values() {
        // Classic table values.
        assert!((t_critical(0.05, 1.0).unwrap() - 12.706_204_736).abs() < 1e-4);
        assert!((t_critical(0.05, 10.0).unwrap() - 2.228_138_852).abs() < 1e-6);
        assert!((t_critical(0.05, 30.0).unwrap() - 2.042_272_456).abs() < 1e-6);
    }

    #[test]
    fn t_critical_larger_than_z() {
        let z = z_critical(0.05).unwrap();
        for &nu in &[2.0, 5.0, 20.0, 100.0] {
            assert!(t_critical(0.05, nu).unwrap() > z, "nu = {nu}");
        }
    }

    #[test]
    fn confidence_interval_geometry() {
        let ci = ConfidenceInterval {
            center: 1.0,
            half_width: 0.5,
        };
        assert_eq!(ci.lower(), 0.5);
        assert_eq!(ci.upper(), 1.5);
        assert_eq!(ci.width(), 1.0);
        assert!(ci.contains(0.5) && ci.contains(1.5));
        assert!(!ci.contains(0.49));
        assert!(ci.to_string().starts_with('['));
    }

    #[test]
    fn normal_interval_widths_scale_with_sigma() {
        let narrow = normal_interval(0.0, 0.1, 0.05).unwrap();
        let wide = normal_interval(0.0, 0.2, 0.05).unwrap();
        assert!((wide.half_width - 2.0 * narrow.half_width).abs() < 1e-12);
        assert!(normal_interval(0.0, -1.0, 0.05).is_err());
    }

    #[test]
    fn bootstrap_interval_brackets_center() {
        let resamples: Vec<f64> = (0..1000).map(|i| i as f64 / 999.0).collect();
        let (lo, hi) = bootstrap_percentile_interval(&resamples, 0.05).unwrap();
        assert!((lo - 0.025).abs() < 0.01);
        assert!((hi - 0.975).abs() < 0.01);
        assert!(bootstrap_percentile_interval(&resamples[..5], 0.05).is_err());
    }

    #[test]
    fn ks_p_value_limits() {
        assert_eq!(ks_p_value(0.0, 50).unwrap(), 1.0);
        assert!(ks_p_value(1.0, 50).unwrap() < 1e-20);
        assert!(ks_p_value(-0.1, 50).is_err());
        assert!(ks_p_value(0.5, 0).is_err());
    }

    #[test]
    fn ks_p_value_monotone_in_d() {
        let mut prev = 1.0;
        for i in 1..20 {
            let d = i as f64 * 0.05;
            let p = ks_p_value(d, 40).unwrap();
            assert!(p <= prev + 1e-12, "p must decrease with d");
            prev = p;
        }
    }

    #[test]
    fn ks_p_value_reference() {
        // The classic 5% critical value for large n is d ≈ 1.358/√n;
        // at that distance the p-value should be near 0.05.
        let n = 400;
        let d = 1.358 / (n as f64).sqrt();
        let p = ks_p_value(d, n).unwrap();
        assert!((p - 0.05).abs() < 0.01, "p = {p}");
    }

    #[test]
    fn empirical_coverage_counts() {
        let obs = [0.0, 1.0, 2.0, 10.0];
        let cis: Vec<ConfidenceInterval> = obs
            .iter()
            .map(|&x| ConfidenceInterval {
                center: if x > 5.0 { 0.0 } else { x },
                half_width: 0.5,
            })
            .collect();
        // First three covered, the 10.0 one not.
        let ec = empirical_coverage(&obs, &cis).unwrap();
        assert!((ec - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empirical_coverage_rejects_mismatch() {
        assert!(empirical_coverage(&[], &[]).is_err());
        let ci = ConfidenceInterval {
            center: 0.0,
            half_width: 1.0,
        };
        assert!(empirical_coverage(&[1.0, 2.0], &[ci]).is_err());
    }
}
