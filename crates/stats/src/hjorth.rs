//! Hjorth distribution (the competing-risks bathtub distribution).

use crate::{ContinuousDistribution, StatsError};

/// The Hjorth (1980) distribution, whose hazard is the sum of a linearly
/// increasing risk and a decreasing (Pareto-like) risk:
///
/// ```text
/// h(t) = δ·t + θ / (1 + β·t),          t ≥ 0
/// S(t) = exp(−δt²/2) / (1 + βt)^{θ/β}
/// ```
///
/// This is the *competing risks* construction the paper's second bathtub
/// model borrows (its reference \[20\]): increasing, decreasing, constant,
/// and bathtub-shaped hazards are all reachable. The hazard is
/// bathtub-shaped exactly when `0 < δ < θ·β`.
///
/// # The β → 0 limit
///
/// The textbook survival form `(1+βt)^{θ/β}` is numerically degenerate
/// as `β → 0` (`θ/β → ∞` while the base → 1, and `powf` loses every
/// significant digit long before β underflows). The implementation
/// therefore evaluates `S(t) = exp(−H(t))` from the cumulative hazard,
/// computes `(θ/β)·ln(1+βt)` with `ln_1p`, and special-cases the exact
/// `β = 0` limit
///
/// ```text
/// S(t) = exp(−δt²/2 − θt)        (β = 0)
/// ```
///
/// — the linear-plus-constant hazard `h(t) = δt + θ`. `β = 0` is
/// accordingly a *legal* parameterization; see DESIGN.md §8.
///
/// # Examples
///
/// ```
/// use resilience_stats::{ContinuousDistribution, Hjorth};
/// let h = Hjorth::new(0.01, 2.0, 0.5)?; // δ, θ, β: bathtub (0.01 < 1.0)
/// assert!(h.is_bathtub());
/// // Hazard decreases initially, then increases.
/// assert!(h.hazard(0.1) > h.hazard(5.0) || h.hazard(30.0) > h.hazard(5.0));
/// # Ok::<(), resilience_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hjorth {
    delta: f64,
    theta: f64,
    beta: f64,
}

impl Hjorth {
    /// Creates a Hjorth distribution with linear-risk slope `delta ≥ 0`,
    /// initial decreasing-risk level `theta ≥ 0`, and decay `beta ≥ 0`
    /// (`beta = 0` is the exact limit `S(t) = exp(−δt²/2 − θt)`).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when a parameter is
    /// negative or non-finite, or when `delta + theta == 0`
    /// (identically zero hazard).
    pub fn new(delta: f64, theta: f64, beta: f64) -> Result<Self, StatsError> {
        if !(delta >= 0.0) || !delta.is_finite() {
            return Err(StatsError::InvalidParameter {
                what: "Hjorth",
                param: "delta",
                value: delta,
                constraint: "delta >= 0 and finite",
            });
        }
        if !(theta >= 0.0) || !theta.is_finite() {
            return Err(StatsError::InvalidParameter {
                what: "Hjorth",
                param: "theta",
                value: theta,
                constraint: "theta >= 0 and finite",
            });
        }
        if !(beta >= 0.0) || !beta.is_finite() {
            return Err(StatsError::InvalidParameter {
                what: "Hjorth",
                param: "beta",
                value: beta,
                constraint: "beta >= 0 and finite",
            });
        }
        if delta + theta == 0.0 {
            return Err(StatsError::InvalidParameter {
                what: "Hjorth",
                param: "delta+theta",
                value: 0.0,
                constraint: "delta + theta > 0",
            });
        }
        Ok(Hjorth { delta, theta, beta })
    }

    /// The linear-risk slope `δ`.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The decreasing-risk level `θ`.
    #[must_use]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The decreasing-risk decay `β`.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Whether the hazard is bathtub-shaped (`0 < δ < θβ`).
    #[must_use]
    pub fn is_bathtub(&self) -> bool {
        self.delta > 0.0 && self.delta < self.theta * self.beta
    }

    /// Time of minimum hazard for bathtub-shaped parameterizations:
    /// `t* = (√(θβ/δ) − 1)/β`.
    ///
    /// Returns `None` when the hazard is monotone.
    #[must_use]
    pub fn hazard_minimum(&self) -> Option<f64> {
        if !self.is_bathtub() {
            return None;
        }
        Some(((self.theta * self.beta / self.delta).sqrt() - 1.0) / self.beta)
    }
}

impl ContinuousDistribution for Hjorth {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.hazard(x) * self.survival(x)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - self.survival(x)
        }
    }

    /// Evaluated as `exp(−H(x))` rather than the textbook
    /// `exp(−δx²/2)/(1+βx)^{θ/β}`: the `powf` form is NaN-adjacent as
    /// `β → 0` (exponent `θ/β → ∞` against a base → 1), while the
    /// cumulative-hazard form degrades continuously into the exact
    /// `β = 0` limit `exp(−δx²/2 − θx)`.
    fn survival(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 1.0;
        }
        (-self.cumulative_hazard(x)).exp()
    }

    fn hazard(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.delta * x + self.theta / (1.0 + self.beta * x)
        }
    }

    fn cumulative_hazard(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let quadratic = 0.5 * self.delta * x * x;
        if self.beta == 0.0 {
            // Limit of (θ/β)·ln(1+βx) as β → 0: the decreasing risk
            // becomes the constant hazard θ.
            quadratic + self.theta * x
        } else {
            // ln_1p keeps full precision for small βx, where ln(1+βx)
            // would cancel catastrophically against the 1.
            quadratic + (self.theta / self.beta) * (self.beta * x).ln_1p()
        }
    }

    /// No closed form; the Hjorth mean requires numerical integration of
    /// the survival function, which callers can do with
    /// `resilience_math::quad` if needed.
    fn mean(&self) -> Option<f64> {
        None
    }

    fn variance(&self) -> Option<f64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bathtub() -> Hjorth {
        Hjorth::new(0.01, 2.0, 0.5).unwrap()
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Hjorth::new(-0.1, 1.0, 1.0).is_err());
        assert!(Hjorth::new(0.1, -1.0, 1.0).is_err());
        assert!(Hjorth::new(0.1, 1.0, -1.0).is_err());
        assert!(Hjorth::new(0.0, 0.0, 1.0).is_err());
        assert!(Hjorth::new(f64::NAN, 1.0, 1.0).is_err());
        assert!(Hjorth::new(0.1, 1.0, f64::INFINITY).is_err());
        // β = 0 is the legal limit form.
        assert!(Hjorth::new(0.1, 1.0, 0.0).is_ok());
    }

    #[test]
    fn beta_zero_limit_is_closed_form() {
        // β = 0: S(t) = exp(−δt²/2 − θt), h(t) = δt + θ.
        let h = Hjorth::new(0.02, 0.7, 0.0).unwrap();
        for x in [0.1_f64, 1.0, 5.0, 20.0] {
            let want = (-0.5 * 0.02 * x * x - 0.7 * x).exp();
            assert!((h.survival(x) - want).abs() < 1e-15, "x = {x}");
            assert!((h.hazard(x) - (0.02 * x + 0.7)).abs() < 1e-15, "x = {x}");
        }
        // The density still integrates to 1.
        let total =
            resilience_math::quad::adaptive_simpson(|x| h.pdf(x), 0.0, 200.0, 1e-10, 45).unwrap();
        assert!((total - 1.0).abs() < 1e-6, "integral = {total}");
    }

    #[test]
    fn survival_continuous_as_beta_approaches_zero() {
        // Regression for the (1+βx)^{θ/β} form: at β = 1e−12 the powf
        // evaluation is pure noise, while the ln_1p form must agree with
        // the β = 0 limit to near machine precision.
        let tiny = Hjorth::new(0.02, 0.7, 1e-12).unwrap();
        let limit = Hjorth::new(0.02, 0.7, 0.0).unwrap();
        for &x in &[0.1, 1.0, 5.0, 20.0, 50.0] {
            let s_tiny = tiny.survival(x);
            let s_limit = limit.survival(x);
            assert!(s_tiny.is_finite(), "x = {x}");
            assert!(
                (s_tiny - s_limit).abs() < 1e-9,
                "x = {x}: {s_tiny} vs {s_limit}"
            );
            assert!(
                (tiny.cumulative_hazard(x) - limit.cumulative_hazard(x)).abs() < 1e-9,
                "x = {x}"
            );
        }
    }

    #[test]
    fn bathtub_detection() {
        assert!(bathtub().is_bathtub());
        // δ > θβ: monotone increasing dominates.
        assert!(!Hjorth::new(5.0, 1.0, 1.0).unwrap().is_bathtub());
        // δ = 0: pure decreasing hazard.
        assert!(!Hjorth::new(0.0, 1.0, 1.0).unwrap().is_bathtub());
    }

    #[test]
    fn hazard_minimum_location() {
        let h = bathtub();
        let t_star = h.hazard_minimum().unwrap();
        // t* = (√(θβ/δ) − 1)/β = (√100 − 1)/0.5 = 18.
        assert!((t_star - 18.0).abs() < 1e-12);
        // The hazard is locally minimal there.
        let hm = h.hazard(t_star);
        assert!(h.hazard(t_star - 1.0) > hm);
        assert!(h.hazard(t_star + 1.0) > hm);
    }

    #[test]
    fn hazard_minimum_none_when_monotone() {
        assert!(Hjorth::new(0.0, 1.0, 1.0)
            .unwrap()
            .hazard_minimum()
            .is_none());
    }

    #[test]
    fn survival_matches_cumulative_hazard() {
        let h = bathtub();
        for &x in &[0.5, 2.0, 10.0, 30.0] {
            let want = (-h.cumulative_hazard(x)).exp();
            assert!((h.survival(x) - want).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn pdf_is_hazard_times_survival_and_integrates() {
        let h = bathtub();
        let total =
            resilience_math::quad::adaptive_simpson(|x| h.pdf(x), 0.0, 100.0, 1e-10, 45).unwrap();
        assert!((total - 1.0).abs() < 1e-6, "integral = {total}");
    }

    #[test]
    fn special_case_pure_linear_is_rayleigh() {
        // θ = 0 would be rejected only if δ + θ = 0; θ = 0 with δ > 0 is
        // the Rayleigh distribution: S(t) = exp(−δt²/2).
        let h = Hjorth::new(0.5, 0.0, 1.0).unwrap();
        for &x in &[0.5, 1.0, 2.0] {
            assert!((h.survival(x) - (-0.25 * x * x).exp()).abs() < 1e-13);
        }
    }

    #[test]
    fn cdf_monotone() {
        let h = bathtub();
        let mut prev = 0.0;
        for i in 0..200 {
            let x = i as f64 * 0.5;
            let c = h.cdf(x);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn quantile_default_inversion_works() {
        let h = bathtub();
        for &p in &[0.1, 0.5, 0.9] {
            let x = h.quantile(p).unwrap();
            assert!((h.cdf(x) - p).abs() < 1e-9, "p = {p}");
        }
    }

    #[test]
    fn moments_are_none() {
        assert_eq!(bathtub().mean(), None);
        assert_eq!(bathtub().variance(), None);
    }
}
