//! Normal (Gaussian) distribution.

use crate::{ContinuousDistribution, StatsError};
use resilience_math::special::{erf, erfc, inv_erf};

/// Normal distribution with mean `μ` and standard deviation `σ > 0`.
///
/// Used by the inference layer for the `z_{1−α/2}` critical values in the
/// paper's confidence-interval construction (its Eq. 13).
///
/// # Examples
///
/// ```
/// use resilience_stats::{ContinuousDistribution, Normal};
/// let n = Normal::standard();
/// assert!((n.cdf(0.0) - 0.5).abs() < 1e-15);
/// let z = n.quantile(0.975)?;
/// assert!((z - 1.959963984540054).abs() < 1e-9);
/// # Ok::<(), resilience_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `std_dev` is finite
    /// and positive and `mean` is finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, StatsError> {
        if !mean.is_finite() {
            return Err(StatsError::InvalidParameter {
                what: "Normal",
                param: "mean",
                value: mean,
                constraint: "mean finite",
            });
        }
        if !(std_dev > 0.0) || !std_dev.is_finite() {
            return Err(StatsError::InvalidParameter {
                what: "Normal",
                param: "std_dev",
                value: std_dev,
                constraint: "std_dev > 0 and finite",
            });
        }
        Ok(Normal { mean, std_dev })
    }

    /// The standard normal `N(0, 1)`.
    #[must_use]
    pub fn standard() -> Self {
        Normal {
            mean: 0.0,
            std_dev: 1.0,
        }
    }

    /// The mean `μ`.
    #[must_use]
    pub fn mu(&self) -> f64 {
        self.mean
    }

    /// The standard deviation `σ`.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.std_dev
    }

    fn z(&self, x: f64) -> f64 {
        (x - self.mean) / self.std_dev
    }
}

impl Default for Normal {
    fn default() -> Self {
        Normal::standard()
    }
}

impl ContinuousDistribution for Normal {
    fn pdf(&self, x: f64) -> f64 {
        let z = self.z(x);
        (-0.5 * z * z).exp() / (self.std_dev * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        let z = self.z(x);
        -0.5 * z * z - self.std_dev.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        0.5 * (1.0 + erf(self.z(x) / std::f64::consts::SQRT_2))
    }

    fn survival(&self, x: f64) -> f64 {
        0.5 * erfc(self.z(x) / std::f64::consts::SQRT_2)
    }

    fn quantile(&self, p: f64) -> Result<f64, StatsError> {
        if !(p > 0.0 && p < 1.0) {
            return Err(StatsError::InvalidProbability {
                what: "Normal::quantile",
                value: p,
            });
        }
        let z = std::f64::consts::SQRT_2 * inv_erf(2.0 * p - 1.0)?;
        Ok(self.mean + self.std_dev * z)
    }

    fn mean(&self) -> Option<f64> {
        Some(self.mean)
    }

    fn variance(&self) -> Option<f64> {
        Some(self.std_dev * self.std_dev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
    }

    #[test]
    fn standard_matches_default() {
        assert_eq!(Normal::standard(), Normal::default());
    }

    #[test]
    fn cdf_reference_values() {
        let n = Normal::standard();
        // Φ(1) = 0.8413447460685429, Φ(1.96) = 0.9750021048517795.
        assert!((n.cdf(1.0) - 0.841_344_746_068_542_9).abs() < 1e-12);
        assert!((n.cdf(1.96) - 0.975_002_104_851_779_5).abs() < 1e-12);
        assert!((n.cdf(-1.0) - (1.0 - 0.841_344_746_068_542_9)).abs() < 1e-12);
    }

    #[test]
    fn pdf_symmetry_and_peak() {
        let n = Normal::new(2.0, 3.0).unwrap();
        assert!((n.pdf(2.0 + 1.5) - n.pdf(2.0 - 1.5)).abs() < 1e-15);
        assert!(n.pdf(2.0) > n.pdf(2.5));
    }

    #[test]
    fn ln_pdf_consistent() {
        let n = Normal::new(-1.0, 0.5).unwrap();
        for &x in &[-2.0, -1.0, 0.0, 3.0] {
            assert!((n.ln_pdf(x) - n.pdf(x).ln()).abs() < 1e-10);
        }
    }

    #[test]
    fn quantile_critical_values() {
        let n = Normal::standard();
        // The z-values used by 90/95/99% confidence intervals.
        assert!((n.quantile(0.95).unwrap() - 1.644_853_626_951_472_7).abs() < 1e-9);
        assert!((n.quantile(0.975).unwrap() - 1.959_963_984_540_054).abs() < 1e-9);
        assert!((n.quantile(0.995).unwrap() - 2.575_829_303_548_901).abs() < 1e-8);
    }

    #[test]
    fn quantile_roundtrip_nonstandard() {
        let n = Normal::new(10.0, 2.5).unwrap();
        for &p in &[0.05, 0.3, 0.5, 0.7, 0.99] {
            let x = n.quantile(p).unwrap();
            assert!((n.cdf(x) - p).abs() < 1e-11, "p = {p}");
        }
    }

    #[test]
    fn survival_tail_accuracy() {
        let n = Normal::standard();
        // S(6) ≈ 9.865876450377018e-10; the 1 − cdf form would lose digits.
        let s = n.survival(6.0);
        assert!((s - 9.865_876_450_377_018e-10).abs() / s < 1e-9);
    }

    #[test]
    fn moments() {
        let n = Normal::new(3.0, 4.0).unwrap();
        assert_eq!(n.mean(), Some(3.0));
        assert_eq!(n.variance(), Some(16.0));
        assert_eq!(n.std_dev(), Some(4.0));
    }
}
