//! Deterministic in-repo pseudo-random number generation.
//!
//! The workspace builds hermetically offline, so it cannot depend on the
//! `rand` crate; and its tables must be bit-reproducible across runs,
//! platforms, and — for the parallel fitting engine — thread counts. This
//! module is the single canonical source of randomness for the whole
//! workspace:
//!
//! * [`SplitMix64`] — a tiny, statistically solid generator used mainly
//!   as a *seed mixer*: it turns correlated seeds (`seed ⊕ index`) into
//!   decorrelated streams.
//! * [`XorShift64`] — the xorshift* generator the synthetic-data and
//!   bootstrap layers draw from. [`XorShift64::stream`] derives the
//!   counter-indexed substreams that make the parallel bootstrap
//!   schedule-invariant.
//! * [`RandomSource`] — the trait the samplers and stochastic optimizers
//!   are generic over, replacing `rand::Rng`.

/// A source of uniform random bits, with derived `f64` and Gaussian
/// draws.
///
/// Implementations must be deterministic functions of their seed/state.
/// All provided methods are allocation-free.
pub trait RandomSource {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `[0, 1)` using the top 53 bits (a full
    /// `f64` mantissa).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    fn next_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "next_index requires n > 0");
        (self.next_u64() % n as u64) as usize
    }

    /// Standard normal deviate via Box–Muller.
    fn next_gaussian(&mut self) -> f64 {
        let u1 = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// SplitMix64: Steele, Lea & Flood's 64-bit mixer.
///
/// Every output is a strong hash of its counter, so even adjacent seeds
/// produce uncorrelated values — which is why [`XorShift64::stream`]
/// routes `seed ⊕ index` through it.
///
/// # Examples
///
/// ```
/// use resilience_stats::rng::{RandomSource, SplitMix64};
/// let mut a = SplitMix64::new(1);
/// let mut b = SplitMix64::new(2);
/// assert_ne!(a.next_u64(), b.next_u64()); // adjacent seeds decorrelate
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Golden-ratio increment of the SplitMix64 counter.
    pub const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

    /// Creates a generator from a seed (any value, including zero).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// One-shot mix: the first output of `SplitMix64::new(seed)`.
    #[must_use]
    pub fn mix(seed: u64) -> u64 {
        SplitMix64::new(seed).next_u64()
    }
}

impl RandomSource for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(Self::GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A deterministic 64-bit xorshift* generator.
///
/// Not cryptographic; used to perturb synthetic curves and drive the
/// bootstrap. The algorithm (and therefore every historical stream) is
/// identical to the generator that previously lived in
/// `resilience_data::noise`.
///
/// # Examples
///
/// ```
/// use resilience_stats::rng::{RandomSource, XorShift64};
/// let mut a = XorShift64::new(42);
/// let mut b = XorShift64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed (zero is mapped to a fixed
    /// non-zero constant, since xorshift cannot leave state 0).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 { SplitMix64::GAMMA } else { seed },
        }
    }

    /// Derives the `index`-th decorrelated substream of `seed`.
    ///
    /// The substream seed is `SplitMix64::mix(seed ⊕ mix(index))`, so
    /// streams depend only on `(seed, index)` — never on which thread or
    /// in which order they are drawn. This is what makes the parallel
    /// bootstrap band invariant to scheduling and thread count.
    #[must_use]
    pub fn stream(seed: u64, index: u64) -> Self {
        XorShift64::new(SplitMix64::mix(seed ^ SplitMix64::mix(index)))
    }

    /// Next raw 64-bit value (inherent mirror of the trait method, so
    /// callers don't need the trait in scope).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, 1)` (inherent mirror).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform index in `[0, n)` (inherent mirror).
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn next_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "next_index requires n > 0");
        (self.next_u64() % n as u64) as usize
    }

    /// Standard normal deviate via Box–Muller (inherent mirror).
    pub fn next_gaussian(&mut self) -> f64 {
        let u1 = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl RandomSource for XorShift64 {
    fn next_u64(&mut self) -> u64 {
        XorShift64::next_u64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_reproducible_streams() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xorshift_different_seeds_differ() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn xorshift_zero_seed_is_remapped() {
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn xorshift_matches_legacy_noise_stream() {
        // The first outputs of seed 42, frozen from the original
        // resilience_data::noise implementation; synthetic data must not
        // change under the rng consolidation.
        let mut g = XorShift64::new(42);
        assert_eq!(g.next_u64(), 620_241_905_386_665_794);
        assert_eq!(g.next_u64(), 10_789_630_473_491_264_163);
    }

    #[test]
    fn splitmix_known_values() {
        // Reference values for seed 0 from the published SplitMix64.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn streams_are_counter_addressable() {
        let a0 = XorShift64::stream(99, 0);
        let a1 = XorShift64::stream(99, 1);
        assert_ne!(a0, a1);
        // Same (seed, index) → same stream, independent of construction
        // order.
        assert_eq!(XorShift64::stream(99, 1), a1);
        // index 0 is not the plain seed stream (mix(0) != 0).
        assert_ne!(a0, XorShift64::new(99));
    }

    #[test]
    fn adjacent_stream_outputs_decorrelate() {
        // Crude correlation check: adjacent replicate streams should not
        // produce near-identical uniform sequences.
        let mut a = XorShift64::stream(0x0B007, 7);
        let mut b = XorShift64::stream(0x0B007, 8);
        let matches = (0..1000)
            .filter(|_| (a.next_f64() - b.next_f64()).abs() < 1e-3)
            .count();
        assert!(matches < 20, "streams look correlated: {matches}");
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut g = XorShift64::new(99);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = g.next_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn gaussian_moments() {
        let mut g = XorShift64::new(123);
        let xs: Vec<f64> = (0..20_000).map(|_| g.next_gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn next_index_stays_in_range() {
        let mut g = SplitMix64::new(5);
        for _ in 0..1000 {
            assert!(g.next_index(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "next_index requires n > 0")]
    fn next_index_rejects_zero() {
        XorShift64::new(1).next_index(0);
    }
}
