//! Inverse-transform sampling over any [`RandomSource`].
//!
//! Any [`ContinuousDistribution`] with a working quantile function can be
//! sampled by pushing uniform variates through it. The synthetic-shape
//! generators in `resilience-data` and the bootstrap machinery use this.

use crate::rng::RandomSource;
use crate::{ContinuousDistribution, StatsError};

/// Draws one sample from `dist` by inverse-transform sampling.
///
/// # Errors
///
/// Propagates quantile failures (e.g. a distribution whose numeric
/// inversion did not converge).
///
/// # Examples
///
/// ```
/// use resilience_stats::{sample::draw, Exponential, XorShift64};
/// let mut rng = XorShift64::new(7);
/// let e = Exponential::new(2.0)?;
/// let x = draw(&e, &mut rng)?;
/// assert!(x >= 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn draw<D, R>(dist: &D, rng: &mut R) -> Result<f64, StatsError>
where
    D: ContinuousDistribution + ?Sized,
    R: RandomSource + ?Sized,
{
    // Uniform in the open interval (0, 1): rejection-resample the endpoints,
    // which occur with probability ~2⁻⁵³ each.
    loop {
        let u: f64 = rng.next_f64();
        if u > 0.0 && u < 1.0 {
            return dist.quantile(u);
        }
    }
}

/// Draws `n` samples from `dist`.
///
/// # Errors
///
/// Propagates the first quantile failure encountered.
pub fn draw_many<D, R>(dist: &D, rng: &mut R, n: usize) -> Result<Vec<f64>, StatsError>
where
    D: ContinuousDistribution + ?Sized,
    R: RandomSource + ?Sized,
{
    (0..n).map(|_| draw(dist, rng)).collect()
}

/// Resamples `data` with replacement (the bootstrap's inner loop).
///
/// Returns an empty vector for empty input.
pub fn resample_with_replacement<R: RandomSource + ?Sized>(data: &[f64], rng: &mut R) -> Vec<f64> {
    if data.is_empty() {
        return Vec::new();
    }
    (0..data.len())
        .map(|_| data[rng.next_index(data.len())])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::XorShift64;
    use crate::{EmpiricalCdf, Exponential, Normal, Weibull};

    fn rng() -> XorShift64 {
        XorShift64::new(0xDEC0DE)
    }

    #[test]
    fn exponential_sample_mean_converges() {
        let e = Exponential::new(0.5).unwrap();
        let mut r = rng();
        let xs = draw_many(&e, &mut r, 20_000).unwrap();
        let m = crate::describe::mean(&xs).unwrap();
        assert!((m - 2.0).abs() < 0.1, "sample mean {m} vs 2.0");
    }

    #[test]
    fn weibull_samples_pass_ks_test() {
        let w = Weibull::new(1.8, 3.0).unwrap();
        let mut r = rng();
        let xs = draw_many(&w, &mut r, 5_000).unwrap();
        let ecdf = EmpiricalCdf::new(xs).unwrap();
        let d = ecdf.ks_statistic(|x| w.cdf(x));
        // KS 1% critical value ≈ 1.63/√n ≈ 0.023 for n = 5000.
        assert!(d < 0.025, "KS statistic {d} too large");
    }

    #[test]
    fn normal_samples_symmetric() {
        let n = Normal::new(10.0, 2.0).unwrap();
        let mut r = rng();
        let xs = draw_many(&n, &mut r, 20_000).unwrap();
        let m = crate::describe::mean(&xs).unwrap();
        let s = crate::describe::std_dev(&xs).unwrap();
        assert!((m - 10.0).abs() < 0.06);
        assert!((s - 2.0).abs() < 0.06);
    }

    #[test]
    fn samples_are_nonnegative_for_positive_support() {
        let e = Exponential::new(1.0).unwrap();
        let mut r = rng();
        for _ in 0..1000 {
            assert!(draw(&e, &mut r).unwrap() >= 0.0);
        }
    }

    #[test]
    fn resample_preserves_length_and_membership() {
        let data = [1.0, 2.0, 3.0, 4.0];
        let mut r = rng();
        let rs = resample_with_replacement(&data, &mut r);
        assert_eq!(rs.len(), 4);
        assert!(rs.iter().all(|v| data.contains(v)));
        assert!(resample_with_replacement(&[], &mut r).is_empty());
    }

    #[test]
    fn seeded_rng_is_reproducible() {
        let e = Exponential::new(1.0).unwrap();
        let a = draw_many(&e, &mut rng(), 10).unwrap();
        let b = draw_many(&e, &mut rng(), 10).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn works_through_dyn_random_source() {
        // `?Sized` bound: samplers accept a type-erased source.
        let e = Exponential::new(1.0).unwrap();
        let mut concrete = rng();
        let r: &mut dyn RandomSource = &mut concrete;
        assert!(draw(&e, r).unwrap() >= 0.0);
    }
}
