//! Probability distributions and statistical utilities for the
//! `predictive-resilience` workspace.
//!
//! The mixture resilience models of *Predictive Resilience Modeling*
//! (Silva et al., RWS 2022) compose cumulative distribution functions —
//! the paper evaluates Exponential and Weibull components (its Eq. 23) —
//! and the validation layer needs normal critical values for confidence
//! intervals (its Eq. 13). This crate supplies:
//!
//! * [`distribution`] — the [`ContinuousDistribution`] trait: densities,
//!   CDFs, survival and hazard functions, quantiles, and moments.
//! * Concrete distributions: [`Exponential`], [`Weibull`], [`Normal`],
//!   [`LogNormal`], [`Gamma`], [`Uniform`], and [`Hjorth`] (the
//!   competing-risks distribution behind the paper's bathtub model).
//! * [`empirical`] — empirical CDFs from samples.
//! * [`describe`] — descriptive statistics (means, variances, quantiles,
//!   autocorrelation).
//! * [`inference`] — normal and Student-t critical values, confidence
//!   interval helpers.
//! * [`ols`] — simple ordinary least squares for diagnostics.
//! * [`rng`] — the workspace's canonical deterministic PRNG
//!   ([`XorShift64`], [`SplitMix64`], the [`RandomSource`] trait).
//! * [`sample`] — inverse-transform sampling over any [`RandomSource`].
//!
//! # Examples
//!
//! ```
//! use resilience_stats::{ContinuousDistribution, Weibull};
//!
//! let w = Weibull::new(1.5, 10.0)?; // shape k, scale λ
//! assert!((w.cdf(0.0) - 0.0).abs() < 1e-15);
//! assert!(w.cdf(10.0) > 0.6 && w.cdf(10.0) < 0.7); // 1 − 1/e ≈ 0.632
//! # Ok::<(), resilience_stats::StatsError>(())
//! ```

// `!(x > 0.0)`-style comparisons are used deliberately throughout this
// crate: unlike `x <= 0.0`, they also reject NaN, which is exactly the
// validation semantics parameter checks need.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod describe;
pub mod distribution;
pub mod empirical;
pub mod error;
pub mod inference;
pub mod ols;
pub mod rng;
pub mod sample;

mod exponential;
mod gamma;
mod hjorth;
mod lognormal;
mod normal;
mod uniform;
mod weibull;

pub use distribution::ContinuousDistribution;
pub use empirical::EmpiricalCdf;
pub use error::StatsError;
pub use exponential::Exponential;
pub use gamma::Gamma;
pub use hjorth::Hjorth;
pub use lognormal::LogNormal;
pub use normal::Normal;
pub use rng::{RandomSource, SplitMix64, XorShift64};
pub use uniform::Uniform;
pub use weibull::Weibull;
