//! Hermetic micro-benchmark harness: warmup + min-of-N wall-clock timing
//! over [`std::time::Instant`], with hand-rolled JSON output.
//!
//! criterion cannot be fetched in the offline build environment, so this
//! module provides the minimal subset the workspace needs: run a closure
//! a few warmup iterations, sample it N times, keep every sample, and
//! report the minimum (the least-noise estimator for wall-clock
//! micro-benchmarks), plus median and mean for context. The `bench`
//! binary serializes [`SpeedupReport`]s to `BENCH_*.json` files that
//! track the repo's perf trajectory.

// Wall-clock is this module's whole job (timing closures); `clippy.toml`
// bans `Instant` elsewhere so it cannot leak into result paths.
#![allow(clippy::disallowed_types)]

use std::time::Instant;

/// Timing samples for one benchmarked operation.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Operation label.
    pub name: String,
    /// Wall-clock nanoseconds per sample, in execution order.
    pub samples_ns: Vec<u128>,
}

impl Measurement {
    /// Fastest sample — the standard micro-benchmark estimator, since
    /// noise is strictly additive.
    ///
    /// # Panics
    ///
    /// Panics when there are no samples.
    #[must_use]
    pub fn min_ns(&self) -> u128 {
        *self.samples_ns.iter().min().expect("at least one sample")
    }

    /// Median sample: the middle sample for odd counts, the average of
    /// the two middle samples (rounded half up) for even counts. Taking
    /// only the upper-middle sample would bias even-count medians high.
    ///
    /// # Panics
    ///
    /// Panics when there are no samples.
    #[must_use]
    pub fn median_ns(&self) -> u128 {
        assert!(!self.samples_ns.is_empty(), "at least one sample");
        let mut sorted = self.samples_ns.clone();
        sorted.sort_unstable();
        let mid = sorted.len() / 2;
        if sorted.len().is_multiple_of(2) {
            // Overflow-safe midpoint of the two middle samples, rounding
            // .5 up: lo + ceil((hi - lo) / 2).
            let (lo, hi) = (sorted[mid - 1], sorted[mid]);
            lo + (hi - lo).div_ceil(2)
        } else {
            sorted[mid]
        }
    }

    /// Mean sample, rounded to the nearest nanosecond. Plain integer
    /// division would silently floor, drifting summary stats low.
    ///
    /// # Panics
    ///
    /// Panics when there are no samples.
    #[must_use]
    pub fn mean_ns(&self) -> u128 {
        assert!(!self.samples_ns.is_empty(), "at least one sample");
        let n = self.samples_ns.len() as u128;
        // Accumulate quotient and remainder separately so the mean is
        // overflow-safe even for samples near `u128::MAX`.
        let mut whole = 0u128;
        let mut rem = 0u128;
        for &s in &self.samples_ns {
            whole += s / n;
            rem += s % n;
        }
        whole + (rem + n / 2) / n
    }

    /// JSON object with the summary statistics and raw samples.
    #[must_use]
    pub fn to_json(&self) -> String {
        let samples: Vec<String> = self.samples_ns.iter().map(u128::to_string).collect();
        format!(
            "{{\"name\": \"{}\", \"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}, \"samples_ns\": [{}]}}",
            json_escape(&self.name),
            self.min_ns(),
            self.median_ns(),
            self.mean_ns(),
            samples.join(", ")
        )
    }
}

/// Runs `f` for `warmup` untimed iterations, then `samples` timed ones.
///
/// The closure's return value goes through [`std::hint::black_box`] so
/// the optimizer cannot elide the work.
///
/// # Panics
///
/// Panics when `samples == 0`.
pub fn bench<T, F: FnMut() -> T>(
    name: &str,
    warmup: usize,
    samples: usize,
    mut f: F,
) -> Measurement {
    assert!(samples > 0, "bench requires at least one sample");
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let samples_ns = (0..samples)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_nanos()
        })
        .collect();
    Measurement {
        name: name.to_string(),
        samples_ns,
    }
}

/// [`bench`], but sampling stops once `budget` of timed wall-clock has
/// been spent — the bench-harness analogue of the library's execution
/// deadlines (DESIGN.md §9), so one slow configuration cannot stall a
/// whole bench sweep.
///
/// The first timed sample always runs (minimum progress), so the
/// returned [`Measurement`] is never empty; `samples` stays the upper
/// bound. Warmup iterations are untimed and do not count against the
/// budget.
///
/// # Panics
///
/// Panics when `samples == 0`.
pub fn bench_with_budget<T, F: FnMut() -> T>(
    name: &str,
    warmup: usize,
    samples: usize,
    budget: std::time::Duration,
    mut f: F,
) -> Measurement {
    assert!(samples > 0, "bench requires at least one sample");
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut samples_ns = Vec::with_capacity(samples);
    let sweep_start = Instant::now();
    for _ in 0..samples {
        let start = Instant::now();
        std::hint::black_box(f());
        samples_ns.push(start.elapsed().as_nanos());
        if sweep_start.elapsed() >= budget {
            break;
        }
    }
    Measurement {
        name: name.to_string(),
        samples_ns,
    }
}

/// Per-family work/time attribution inside one benchmarked operation
/// (DESIGN.md §11): wall-clock drifts with the machine, so baselines are
/// diffed family-by-family to tell "one family got slower" from "the
/// machine got slower".
#[derive(Debug, Clone)]
pub struct FamilyTiming {
    /// Family name as reported by the fit events.
    pub name: String,
    /// Objective evaluations charged to this family in the observed
    /// correctness pass (deterministic).
    pub evaluations: u64,
    /// Median wall-clock of fitting this family alone, serial.
    pub median_ns: u128,
}

impl FamilyTiming {
    /// JSON object for this family's row.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\": \"{}\", \"evaluations\": {}, \"median_ns\": {}}}",
            json_escape(&self.name),
            self.evaluations,
            self.median_ns
        )
    }
}

/// A serial-vs-parallel comparison for one pipeline stage, serialized to
/// a `BENCH_*.json` file by the `bench` binary.
#[derive(Debug, Clone)]
pub struct SpeedupReport {
    /// Benchmark name (e.g. `rank_models`).
    pub benchmark: String,
    /// `std::thread::available_parallelism()` on the measuring machine —
    /// speedups are only meaningful relative to this.
    pub cores: usize,
    /// Timing of the serial configuration.
    pub serial: Measurement,
    /// Timing of the parallel configuration.
    pub parallel: Measurement,
    /// Whether the parallel run produced bit-identical results to the
    /// serial run (checked by the caller on the actual outputs).
    pub identical: bool,
    /// Deterministic work counters for the benchmarked operation
    /// (objective evaluations, solver iterations, …), recorded once from
    /// an observed correctness pass — never from the timed passes, which
    /// run unobserved. Wall-clock drifts with the machine; these do not,
    /// so a perf regression can be split into "more work" vs "slower
    /// work" by diffing baselines.
    pub counters: Vec<(String, u64)>,
    /// Raw `evals_per_fit` histogram observations from the observed
    /// correctness pass, in fit order — the per-fit work profile the
    /// warm-start/analytic-Jacobian layer (DESIGN.md §11) is meant to
    /// shrink. Deterministic, so regressions diff exactly.
    pub evals_per_fit: Vec<u64>,
    /// Per-family work and timing attribution; empty when the benchmark
    /// runs a single family already named in `context`.
    pub per_family: Vec<FamilyTiming>,
    /// Free-form context keys (series name, replicate count, …).
    pub context: Vec<(String, String)>,
}

impl SpeedupReport {
    /// Serial-over-parallel speedup from the min-of-N estimates.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.serial.min_ns() as f64 / self.parallel.min_ns().max(1) as f64
    }

    /// Full JSON document for this comparison.
    #[must_use]
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("\"{}\": {}", json_escape(k), v))
            .collect();
        let context: Vec<String> = self
            .context
            .iter()
            .map(|(k, v)| format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)))
            .collect();
        let evals: Vec<String> = self.evals_per_fit.iter().map(u64::to_string).collect();
        let per_family: Vec<String> = self.per_family.iter().map(FamilyTiming::to_json).collect();
        format!(
            "{{\n  \"benchmark\": \"{}\",\n  \"cores\": {},\n  \"identical\": {},\n  \"speedup\": {:.3},\n  \"serial\": {},\n  \"parallel\": {},\n  \"counters\": {{{}}},\n  \"evals_per_fit\": [{}],\n  \"per_family\": [{}],\n  \"context\": {{{}}}\n}}\n",
            json_escape(&self.benchmark),
            self.cores,
            self.identical,
            self.speedup(),
            self.serial.to_json(),
            self.parallel.to_json(),
            counters.join(", "),
            evals.join(", "),
            per_family.join(", "),
            context.join(", ")
        )
    }
}

/// One cell of the scenario × noise × length sweep: the winning family
/// and its fit quality for a single generated scenario series.
#[derive(Debug, Clone)]
pub struct ScenarioCell {
    /// Scenario name from the catalog (e.g. `shape-V`, `step-outage`).
    pub scenario: String,
    /// Noise configuration label (e.g. `clean`, `gaussian-1e-3`).
    pub noise: String,
    /// Grid length of the generated series.
    pub n: usize,
    /// Family ranked first by `rank_models_supervised`.
    pub winner: String,
    /// Winner's adjusted R².
    pub r2_adj: f64,
    /// Winner's sum of squared errors.
    pub sse: f64,
}

impl ScenarioCell {
    /// JSON object for this cell.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"scenario\": \"{}\", \"noise\": \"{}\", \"n\": {}, \"winner\": \"{}\", \"r2_adj\": {:.12}, \"sse\": {:.12e}}}",
            json_escape(&self.scenario),
            json_escape(&self.noise),
            self.n,
            json_escape(&self.winner),
            self.r2_adj,
            self.sse
        )
    }
}

/// Baseline for the scenario sweep (`BENCH_scenarios.json`): the full
/// shape × noise × length grid fed through `rank_models_supervised`,
/// plus the determinism verdict of re-ranking every cell under a
/// different consumer count.
#[derive(Debug, Clone)]
pub struct ScenarioSweepReport {
    /// `std::thread::available_parallelism()` on the measuring machine.
    pub cores: usize,
    /// Whether every cell's ranking was bit-identical between the serial
    /// and fixed-parallel passes.
    pub identical: bool,
    /// One row per (scenario, noise, length) grid point.
    pub cells: Vec<ScenarioCell>,
}

impl ScenarioSweepReport {
    /// Full JSON document for the sweep baseline.
    #[must_use]
    pub fn to_json(&self) -> String {
        let cells: Vec<String> = self
            .cells
            .iter()
            .map(|c| format!("    {}", c.to_json()))
            .collect();
        format!(
            "{{\n  \"benchmark\": \"scenario_sweep\",\n  \"cores\": {},\n  \"identical\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
            self.cores,
            self.identical,
            cells.join(",\n")
        )
    }
}

/// Median of a set of integer observations under the same convention as
/// [`Measurement::median_ns`]: middle sample for odd counts, average of
/// the two middle samples (rounded half up) for even counts. Returns
/// `None` for an empty set.
#[must_use]
pub fn median_u64(samples: &[u64]) -> Option<u64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let mid = sorted.len() / 2;
    Some(if sorted.len().is_multiple_of(2) {
        let (lo, hi) = (sorted[mid - 1], sorted[mid]);
        lo + (hi - lo).div_ceil(2)
    } else {
        sorted[mid]
    })
}

/// Escapes a string for embedding in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_collects_requested_samples() {
        let mut calls = 0usize;
        let m = bench("noop", 2, 5, || {
            calls += 1;
            calls
        });
        assert_eq!(m.samples_ns.len(), 5);
        assert_eq!(calls, 7, "2 warmup + 5 timed");
        assert!(m.min_ns() <= m.median_ns());
        assert!(m.min_ns() <= m.mean_ns());
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn bench_rejects_zero_samples() {
        bench("empty", 0, 0, || ());
    }

    #[test]
    fn budgeted_bench_always_keeps_one_sample() {
        // A zero budget stops after the mandatory first sample.
        let mut calls = 0usize;
        let m = bench_with_budget("tight", 1, 50, std::time::Duration::ZERO, || {
            calls += 1;
            calls
        });
        assert_eq!(m.samples_ns.len(), 1);
        assert_eq!(calls, 2, "1 warmup + 1 timed");
    }

    #[test]
    fn budgeted_bench_honors_the_sample_cap_under_a_loose_budget() {
        let m = bench_with_budget("loose", 0, 5, std::time::Duration::from_secs(60), || 1 + 1);
        assert_eq!(m.samples_ns.len(), 5);
    }

    #[test]
    fn measurement_statistics() {
        let m = Measurement {
            name: "m".into(),
            samples_ns: vec![30, 10, 20],
        };
        assert_eq!(m.min_ns(), 10);
        assert_eq!(m.median_ns(), 20);
        assert_eq!(m.mean_ns(), 20);
    }

    #[test]
    fn single_sample_statistics_collapse_to_the_sample() {
        let m = Measurement {
            name: "one".into(),
            samples_ns: vec![37],
        };
        assert_eq!(m.min_ns(), 37);
        assert_eq!(m.median_ns(), 37);
        assert_eq!(m.mean_ns(), 37);
    }

    #[test]
    fn even_count_median_averages_the_middle_pair() {
        // The old estimator returned the upper-middle sample (30 here),
        // biasing even-count medians high.
        let m = Measurement {
            name: "even".into(),
            samples_ns: vec![40, 10, 30, 20],
        };
        assert_eq!(m.median_ns(), 25);
        // A .5 midpoint rounds to nearest (half up).
        let m = Measurement {
            name: "half".into(),
            samples_ns: vec![2, 1],
        };
        assert_eq!(m.median_ns(), 2);
    }

    #[test]
    fn mean_rounds_to_nearest_instead_of_flooring() {
        let m = Measurement {
            name: "round".into(),
            samples_ns: vec![1, 2], // 1.5 → 2, not 1
        };
        assert_eq!(m.mean_ns(), 2);
        let m = Measurement {
            name: "floorish".into(),
            samples_ns: vec![1, 1, 2], // 4/3 ≈ 1.33 → 1
        };
        assert_eq!(m.mean_ns(), 1);
    }

    #[test]
    fn mean_is_overflow_safe_for_extreme_samples() {
        let m = Measurement {
            name: "huge".into(),
            samples_ns: vec![u128::MAX, u128::MAX, u128::MAX],
        };
        assert_eq!(m.mean_ns(), u128::MAX);
        let m = Measurement {
            name: "mixed".into(),
            samples_ns: vec![u128::MAX, u128::MAX - 2],
        };
        assert_eq!(m.mean_ns(), u128::MAX - 1);
    }

    #[test]
    fn median_u64_shares_the_measurement_convention() {
        assert_eq!(median_u64(&[]), None);
        assert_eq!(median_u64(&[5]), Some(5));
        assert_eq!(median_u64(&[30, 10, 20]), Some(20));
        assert_eq!(median_u64(&[40, 10, 30, 20]), Some(25));
        assert_eq!(median_u64(&[1, 2]), Some(2)); // .5 rounds half up
        assert_eq!(median_u64(&[u64::MAX, u64::MAX - 2]), Some(u64::MAX - 1));
    }

    #[test]
    fn json_contains_fields_and_parses_shapewise() {
        let report = SpeedupReport {
            benchmark: "rank_models".into(),
            cores: 4,
            serial: Measurement {
                name: "serial".into(),
                samples_ns: vec![400],
            },
            parallel: Measurement {
                name: "parallel".into(),
                samples_ns: vec![100],
            },
            identical: true,
            counters: vec![("objective_evals".into(), 1234)],
            evals_per_fit: vec![400, 350],
            per_family: vec![FamilyTiming {
                name: "Quadratic".into(),
                evaluations: 400,
                median_ns: 99,
            }],
            context: vec![("series".into(), "1990-93".into())],
        };
        assert!((report.speedup() - 4.0).abs() < 1e-12);
        let json = report.to_json();
        for needle in [
            "\"benchmark\": \"rank_models\"",
            "\"cores\": 4",
            "\"identical\": true",
            "\"speedup\": 4.000",
            "\"min_ns\": 400",
            "\"objective_evals\": 1234",
            "\"evals_per_fit\": [400, 350]",
            "\"name\": \"Quadratic\", \"evaluations\": 400, \"median_ns\": 99",
            "\"series\": \"1990-93\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        // Balanced braces/brackets — a cheap structural sanity check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn scenario_sweep_json_is_structurally_sound() {
        let report = ScenarioSweepReport {
            cores: 8,
            identical: true,
            cells: vec![
                ScenarioCell {
                    scenario: "shape-V".into(),
                    noise: "clean".into(),
                    n: 48,
                    winner: "Quadratic".into(),
                    r2_adj: 0.987654321,
                    sse: 1.5e-4,
                },
                ScenarioCell {
                    scenario: "step-outage".into(),
                    noise: "gaussian-1e-3".into(),
                    n: 96,
                    winner: "Competing Risks".into(),
                    r2_adj: 0.9,
                    sse: 2.0e-3,
                },
            ],
        };
        let json = report.to_json();
        for needle in [
            "\"benchmark\": \"scenario_sweep\"",
            "\"cores\": 8",
            "\"identical\": true",
            "\"scenario\": \"shape-V\"",
            "\"noise\": \"gaussian-1e-3\"",
            "\"winner\": \"Competing Risks\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("plain"), "plain");
    }
}
