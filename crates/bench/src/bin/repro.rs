//! `repro` — regenerates every table and figure of *Predictive
//! Resilience Modeling* (Silva et al., RWS 2022).
//!
//! ```text
//! repro <experiment>
//!
//! experiments:
//!   fig2    the seven recession curves
//!   table1  bathtub goodness of fit (7 recessions × 2 models)
//!   fig3    quadratic fit + 95% CI, 2001-05
//!   fig4    competing-risks fit + 95% CI, 1990-93
//!   table2  predictive interval metrics, bathtub models, 1990-93
//!   table3  mixture goodness of fit (7 recessions × 4 combos)
//!   fig5    Wei-Exp fit + 95% CI, 1990-93
//!   fig6    Exp-Wei and Wei-Wei fits + 95% CIs, 1981-83
//!   table4  predictive interval metrics, mixture combos, 1990-93
//!   shapes     extension: V/U/W/L/J/K sweep incl. quartic model
//!   trends     extension: recovery-trend ablation
//!   w-ext      extension: double-bathtub model on the 1980 W shape
//!   l-ext      extension: crash-recovery model on the 2020-21 L shape
//!   selection  extension: AICc/BIC model ranking per recession
//!   bootstrap  extension: Eq. 13 band vs residual bootstrap band
//!   all        everything above, in order
//! ```

use std::process::ExitCode;

fn run(which: &str) -> Result<Vec<String>, Box<dyn std::error::Error>> {
    let out = match which {
        "fig2" => vec![resilience_bench::fig2()?],
        "table1" => vec![resilience_bench::table1()?],
        "fig3" => vec![resilience_bench::fig3()?],
        "fig4" => vec![resilience_bench::fig4()?],
        "table2" => vec![resilience_bench::table2()?],
        "table3" => vec![resilience_bench::table3()?],
        "fig5" => vec![resilience_bench::fig5()?],
        "fig6" => vec![resilience_bench::fig6()?],
        "table4" => vec![resilience_bench::table4()?],
        "shapes" => vec![resilience_bench::shape_sweep()?],
        "trends" => vec![resilience_bench::trend_ablation()?],
        "w-ext" => vec![resilience_bench::w_extension()?],
        "l-ext" => vec![resilience_bench::l_extension()?],
        "selection" => vec![resilience_bench::selection_table()?],
        "bootstrap" => vec![resilience_bench::bootstrap_comparison()?],
        "all" => {
            let mut blocks = Vec::new();
            for name in [
                "fig2",
                "table1",
                "fig3",
                "fig4",
                "table2",
                "table3",
                "fig5",
                "fig6",
                "table4",
                "shapes",
                "trends",
                "w-ext",
                "l-ext",
                "selection",
                "bootstrap",
            ] {
                blocks.extend(run(name)?);
            }
            blocks
        }
        other => return Err(format!("unknown experiment '{other}' (try: repro all)").into()),
    };
    Ok(out)
}

fn main() -> ExitCode {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match run(&which) {
        Ok(blocks) => {
            println!("{}", blocks.join("\n\n================\n\n"));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("repro: {e}");
            ExitCode::FAILURE
        }
    }
}
