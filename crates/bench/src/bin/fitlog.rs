//! Run-report inspector: replays a JSONL telemetry log into the
//! per-family [`RunReport`] summary.
//!
//! ```sh
//! cargo run --release -p resilience-bench --bin fitlog -- run.jsonl
//! cargo run --release -p resilience-bench --bin fitlog -- run.jsonl --json
//! ```
//!
//! Reads a log produced by [`resilience_obs::JsonlObserver`] (one event
//! per line), aggregates it, and prints the human-readable table — or,
//! with `--json`, the machine-readable report document. A log is a
//! complete, replayable record of a run's control flow, so this works on
//! logs from any machine and any session; nothing here re-runs a fit.
//!
//! Exit status: 0 on success, 1 for usage errors, unreadable files, or a
//! malformed log (the offending line number is reported).

use resilience_obs::{parse_log, RunReport};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: fitlog <run.jsonl> [--json]");
    eprintln!();
    eprintln!("Aggregates a resilience-obs JSONL event log into a run report:");
    eprintln!("per-family fit/convergence/failure totals, global counters,");
    eprintln!("and evaluation histograms. --json emits the machine-readable");
    eprintln!("document instead of the table.");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut path: Option<String> = None;
    let mut json = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "-h" | "--help" => return usage(),
            _ if arg.starts_with('-') => {
                eprintln!("fitlog: unknown flag {arg}");
                return usage();
            }
            _ if path.is_some() => {
                eprintln!("fitlog: more than one log path given");
                return usage();
            }
            _ => path = Some(arg),
        }
    }
    let Some(path) = path else {
        return usage();
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("fitlog: read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let events = match parse_log(&text) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("fitlog: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = RunReport::from_events(events);
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_table());
    }
    ExitCode::SUCCESS
}
