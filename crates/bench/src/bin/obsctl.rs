//! Observability control tool: query, diff, and export JSONL telemetry
//! logs produced by [`resilience_obs::JsonlObserver`].
//!
//! ```sh
//! obsctl report <run.jsonl> [--json]          # per-family run report
//! obsctl tree <run.jsonl> [--cells N] [--depth N]  # span-tree render
//! obsctl top <run.jsonl> [--by evals|retries] [--limit K]
//! obsctl diff <a.jsonl> <b.jsonl> [--report]  # empty output ⇔ identical
//! obsctl export <run.jsonl>                   # Prometheus-style metrics
//! ```
//!
//! Everything here replays a recorded log; nothing re-runs a fit, so the
//! tool works on logs from any machine and any session. `report`
//! reproduces the `fitlog` binary's behavior under the subcommand
//! vocabulary; the other subcommands are the analysis plane on top:
//! `tree` reconstructs the fleet → cell → fit → attempt → solver
//! hierarchy from logical clocks alone, `top` ranks the hottest
//! cells/families by attributed work, `diff` compares two logs line- and
//! field-wise (or their aggregated reports with `--report`), and
//! `export` renders the deterministic metrics exposition.
//!
//! Exit status: 0 on success (for `diff`: the inputs are identical),
//! 1 when `diff` found differences, 2 for usage errors, unreadable
//! files, or malformed logs.

use resilience_obs::{
    diff_logs, diff_reports, parse_log, render_field_diffs, render_line_diffs, Event,
    MetricsSnapshot, RunReport, SpanTree, WorkMetric,
};
use std::process::ExitCode;

/// Exit code for usage/IO/parse errors (1 is reserved for "diff found").
const FAILURE: u8 = 2;

/// Writes `text` to stdout. A closed pipe (the downstream reader exited,
/// e.g. `obsctl tree … | head`) is a normal unix condition, not an
/// error: the rest of the output is dropped and the command's own exit
/// code stands. Any other write failure exits 2.
fn emit(text: &str) -> Result<(), ExitCode> {
    use std::io::Write;
    match std::io::stdout().write_all(text.as_bytes()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
        Err(e) => {
            eprintln!("obsctl: write stdout: {e}");
            Err(ExitCode::from(FAILURE))
        }
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: obsctl <command> [args]");
    eprintln!();
    eprintln!("commands:");
    eprintln!("  report <run.jsonl> [--json]            aggregate the log into a run report");
    eprintln!("  tree   <run.jsonl> [--cells N] [--depth N]");
    eprintln!("                                         render the span tree (depth 1-4)");
    eprintln!("  top    <run.jsonl> [--by evals|retries] [--limit K]");
    eprintln!("                                         hottest cells and families by work");
    eprintln!("  diff   <a.jsonl> <b.jsonl> [--report]  compare two logs (or their reports);");
    eprintln!("                                         empty output and exit 0 iff identical");
    eprintln!("  export <run.jsonl>                     Prometheus-style metrics exposition");
    ExitCode::from(FAILURE)
}

/// Reads and parses one JSONL log, reporting errors on stderr.
fn load(path: &str) -> Result<Vec<Event>, ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("obsctl: read {path}: {e}");
        ExitCode::from(FAILURE)
    })?;
    parse_log(&text).map_err(|e| {
        eprintln!("obsctl: {path}: {e}");
        ExitCode::from(FAILURE)
    })
}

/// Parses a flag's value argument (`--cells 8`) as a `usize`.
fn parse_count(flag: &str, value: Option<&String>) -> Result<usize, ExitCode> {
    let Some(value) = value else {
        eprintln!("obsctl: {flag} needs a value");
        return Err(ExitCode::from(FAILURE));
    };
    value.parse().map_err(|_| {
        eprintln!("obsctl: {flag} {value}: not a number");
        ExitCode::from(FAILURE)
    })
}

fn cmd_report(args: &[String]) -> ExitCode {
    let mut path: Option<&String> = None;
    let mut json = false;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            _ if arg.starts_with('-') => {
                eprintln!("obsctl: report: unknown flag {arg}");
                return usage();
            }
            _ if path.is_some() => {
                eprintln!("obsctl: report: more than one log path given");
                return usage();
            }
            _ => path = Some(arg),
        }
    }
    let Some(path) = path else { return usage() };
    let events = match load(path) {
        Ok(events) => events,
        Err(code) => return code,
    };
    let report = RunReport::from_events(events);
    let text = if json {
        format!("{}\n", report.to_json())
    } else {
        report.render_table()
    };
    match emit(&text) {
        Ok(()) => ExitCode::SUCCESS,
        Err(code) => code,
    }
}

fn cmd_tree(args: &[String]) -> ExitCode {
    let mut path: Option<&String> = None;
    let mut max_cells = usize::MAX;
    let mut max_depth = 4usize;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--cells" => match parse_count("--cells", iter.next()) {
                Ok(n) => max_cells = n,
                Err(code) => return code,
            },
            "--depth" => match parse_count("--depth", iter.next()) {
                Ok(n) => max_depth = n,
                Err(code) => return code,
            },
            _ if arg.starts_with('-') => {
                eprintln!("obsctl: tree: unknown flag {arg}");
                return usage();
            }
            _ if path.is_some() => {
                eprintln!("obsctl: tree: more than one log path given");
                return usage();
            }
            _ => path = Some(arg),
        }
    }
    let Some(path) = path else { return usage() };
    let events = match load(path) {
        Ok(events) => events,
        Err(code) => return code,
    };
    match emit(&SpanTree::build(&events).render(max_cells, max_depth)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(code) => code,
    }
}

fn cmd_top(args: &[String]) -> ExitCode {
    let mut path: Option<&String> = None;
    let mut metric = WorkMetric::Evaluations;
    let mut limit = 10usize;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--by" => match iter.next().map(String::as_str) {
                Some("evals") => metric = WorkMetric::Evaluations,
                Some("retries") => metric = WorkMetric::Retries,
                Some(other) => {
                    eprintln!("obsctl: top: --by {other}: expected evals or retries");
                    return ExitCode::from(FAILURE);
                }
                None => {
                    eprintln!("obsctl: top: --by needs a value");
                    return ExitCode::from(FAILURE);
                }
            },
            "--limit" => match parse_count("--limit", iter.next()) {
                Ok(n) => limit = n,
                Err(code) => return code,
            },
            _ if arg.starts_with('-') => {
                eprintln!("obsctl: top: unknown flag {arg}");
                return usage();
            }
            _ if path.is_some() => {
                eprintln!("obsctl: top: more than one log path given");
                return usage();
            }
            _ => path = Some(arg),
        }
    }
    let Some(path) = path else { return usage() };
    let events = match load(path) {
        Ok(events) => events,
        Err(code) => return code,
    };
    let tree = SpanTree::build(&events);
    let unit = match metric {
        WorkMetric::Evaluations => "evals",
        WorkMetric::Retries => "retries",
    };
    use std::fmt::Write;
    let mut text = String::new();
    let _ = writeln!(text, "hottest cells by {unit}:");
    for (cell, work) in tree.hottest_cells(limit, metric) {
        let _ = writeln!(text, "  cell {cell:<6} {unit}={work}");
    }
    let _ = writeln!(text, "hottest families by {unit}:");
    for (family, work) in tree.hottest_families(limit, metric) {
        let _ = writeln!(text, "  {family:<28} {unit}={work}");
    }
    match emit(&text) {
        Ok(()) => ExitCode::SUCCESS,
        Err(code) => code,
    }
}

/// How many differing lines `diff` prints before summarizing the rest.
const DIFF_LIMIT: usize = 20;

fn cmd_diff(args: &[String]) -> ExitCode {
    let mut paths: Vec<&String> = Vec::new();
    let mut as_report = false;
    for arg in args {
        match arg.as_str() {
            "--report" => as_report = true,
            _ if arg.starts_with('-') => {
                eprintln!("obsctl: diff: unknown flag {arg}");
                return usage();
            }
            _ => paths.push(arg),
        }
    }
    let [left_path, right_path] = paths.as_slice() else {
        eprintln!("obsctl: diff needs exactly two log paths");
        return usage();
    };
    if as_report {
        let (left, right) = match (load(left_path), load(right_path)) {
            (Ok(l), Ok(r)) => (l, r),
            (Err(code), _) | (_, Err(code)) => return code,
        };
        let diffs = diff_reports(
            &RunReport::from_events(left),
            &RunReport::from_events(right),
        );
        if diffs.is_empty() {
            return ExitCode::SUCCESS;
        }
        return match emit(&render_field_diffs(&diffs)) {
            Ok(()) => ExitCode::from(1),
            Err(code) => code,
        };
    }
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| {
            eprintln!("obsctl: read {path}: {e}");
            ExitCode::from(FAILURE)
        })
    };
    let (left, right) = match (read(left_path), read(right_path)) {
        (Ok(l), Ok(r)) => (l, r),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let diffs = diff_logs(&left, &right);
    if diffs.is_empty() {
        return ExitCode::SUCCESS;
    }
    match emit(&render_line_diffs(&diffs, DIFF_LIMIT)) {
        Ok(()) => ExitCode::from(1),
        Err(code) => code,
    }
}

fn cmd_export(args: &[String]) -> ExitCode {
    let [path] = args else {
        eprintln!("obsctl: export needs exactly one log path");
        return usage();
    };
    let events = match load(path) {
        Ok(events) => events,
        Err(code) => return code,
    };
    let report = RunReport::from_events(events);
    match emit(&MetricsSnapshot::from_report(&report).render()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(code) => code,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        return usage();
    };
    match command.as_str() {
        "report" => cmd_report(rest),
        "tree" => cmd_tree(rest),
        "top" => cmd_top(rest),
        "diff" => cmd_diff(rest),
        "export" => cmd_export(rest),
        "-h" | "--help" => usage(),
        other => {
            eprintln!("obsctl: unknown command {other}");
            usage()
        }
    }
}
