//! Micro-benchmark binary: serial-vs-parallel timings for the two
//! fan-out stages of the fitting pipeline, written as JSON baselines.
//!
//! ```sh
//! cargo run --release -p resilience-bench --bin bench
//! ```
//!
//! Writes `BENCH_fitting.json` (`rank_models` over the six paper
//! families), `BENCH_bootstrap.json` (`bootstrap_band`, 200 replicates),
//! and `BENCH_scenarios.json` (the scenario × noise × length ranking
//! sweep) to the working directory. Each file records the machine's
//! core count, timing or fit-quality data per configuration, and whether
//! the parallel outputs were bit-identical to the serial ones (they must
//! always be — see DESIGN.md §Performance & determinism).
//!
//! Flags: `--smoke` (fast determinism + work-profile guard),
//! `--scenario-smoke` (canonical scenario set generates and ranks
//! deterministically), `--scenarios` (write only the scenario sweep
//! baseline), `fleet` (full fleet sweep + repeatability gates →
//! `BENCH_fleet_full.json`), `fleet --fleet-smoke` (the 64-cell CI fleet
//! with double-run and serial-vs-`Fixed(2)` identity gates →
//! `BENCH_fleet.json`).

use resilience_bench::chaos::{evaluate_chaos_fleet, ChaosReport};
use resilience_bench::fleet::{evaluate_fleet, full_grid, smoke_grid, FleetReport};
use resilience_bench::harness::{
    bench_with_budget, median_u64, FamilyTiming, Measurement, ScenarioCell, ScenarioSweepReport,
    SpeedupReport,
};
use resilience_bench::obs_smoke::{evaluate_obs_smoke, ObsSmokeArtifacts, ObsSmokeReport};
use resilience_core::bathtub::{CompetingRisksFamily, QuadraticFamily, QuarticFamily};
use resilience_core::bootstrap::{
    bootstrap_band, bootstrap_band_with, BootstrapBand, BootstrapConfig,
};
use resilience_core::fit::{fit_least_squares, FitConfig};
use resilience_core::mixture::MixtureFamily;
use resilience_core::model::ModelFamily;
use resilience_core::runtime::{rank_models_supervised, Control, ExecPolicy};
use resilience_core::selection::{rank_models, Ranking};
use resilience_data::recessions::Recession;
use resilience_data::scenario::{catalog, Drift, EventProcess, Noise, ScenarioSpec, ShapeKind};
use resilience_obs::{Event, HistogramId, RecordingObserver, RunReport};
use resilience_optim::Parallelism;
use std::sync::Arc;

const WARMUP: usize = 1;
const SAMPLES: usize = 5;
/// Wall-clock cap per benchmarked configuration. Generous — a healthy
/// run never hits it — but it bounds the damage of a pathological
/// regression: a 100× slowdown costs one budget per configuration, not
/// 100× the whole sweep (execution-deadline discipline, DESIGN.md §9).
const BUDGET: std::time::Duration = std::time::Duration::from_secs(120);

fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The six families the paper fits: the two bathtub curves (§IV-A) and
/// the four mixture combinations (§IV-B).
fn paper_families(mixtures: &[MixtureFamily]) -> Vec<&dyn ModelFamily> {
    let mut families: Vec<&dyn ModelFamily> = vec![&QuadraticFamily, &CompetingRisksFamily];
    for fam in mixtures {
        families.push(fam);
    }
    families
}

/// Aggregates an observed run's event buffer into named counter totals
/// for the `BENCH_*.json` baseline. The timed passes stay unobserved;
/// this comes from one extra correctness pass.
fn run_counters(report: &RunReport) -> Vec<(String, u64)> {
    report
        .counters
        .iter()
        .map(|(id, v)| (id.as_str().to_string(), *v))
        .collect()
}

/// Raw `evals_per_fit` observations in fit order, straight from the
/// event stream (the [`RunReport`] histogram buckets them; the baseline
/// keeps the exact values so regressions diff per fit).
fn evals_per_fit(events: &[Event]) -> Vec<u64> {
    events
        .iter()
        .filter_map(|e| match e {
            Event::Hist {
                id: HistogramId::EvalsPerFit,
                value,
            } => Some(*value),
            _ => None,
        })
        .collect()
}

fn rankings_identical(a: &Ranking, b: &Ranking) -> bool {
    a.rows.len() == b.rows.len()
        && a.rows.iter().zip(&b.rows).all(|(x, y)| {
            x.family_name == y.family_name
                && x.sse.to_bits() == y.sse.to_bits()
                && x.r2_adj.to_bits() == y.r2_adj.to_bits()
        })
}

fn bands_identical(a: &BootstrapBand, b: &BootstrapBand) -> bool {
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    bits(&a.lower) == bits(&b.lower)
        && bits(&a.upper) == bits(&b.upper)
        && a.replicates == b.replicates
}

fn bench_fitting() -> SpeedupReport {
    let series = Recession::R1990_93.payroll_index();
    let mixtures = MixtureFamily::paper_combinations();
    let families = paper_families(&mixtures);
    let config = |p: Parallelism| FitConfig {
        parallelism: p,
        ..FitConfig::default()
    };

    let serial_out =
        rank_models(&families, &series, &config(Parallelism::Serial)).expect("serial rank_models");
    let parallel_out =
        rank_models(&families, &series, &config(Parallelism::Auto)).expect("parallel rank_models");
    let identical = rankings_identical(&serial_out, &parallel_out);

    // One observed pass for the work counters (objective evals, solver
    // iteration mix); supervised ranking under the default policy is
    // numerically identical to plain rank_models.
    let rec = Arc::new(RecordingObserver::new());
    rank_models_supervised(
        &families,
        &series,
        &config(Parallelism::Serial),
        &ExecPolicy::default(),
        &Control::unbounded().observe(rec.clone()),
    )
    .expect("observed rank_models");
    let events = rec.take();
    let fit_evals = evals_per_fit(&events);
    let observed = RunReport::from_events(events);
    let counters = run_counters(&observed);

    // Per-family timing attribution: each family fitted alone, serial.
    let per_family: Vec<FamilyTiming> = families
        .iter()
        .map(|fam| {
            let cfg = config(Parallelism::Serial);
            let m = bench_with_budget(fam.name(), WARMUP, SAMPLES, BUDGET, || {
                fit_least_squares(*fam, &series, &cfg).expect("family fit")
            });
            FamilyTiming {
                name: fam.name().to_string(),
                evaluations: observed
                    .families
                    .iter()
                    .find(|f| f.name == fam.name())
                    .map_or(0, |f| f.evaluations),
                median_ns: m.median_ns(),
            }
        })
        .collect();

    let time = |name: &str, p: Parallelism| -> Measurement {
        let cfg = config(p);
        bench_with_budget(name, WARMUP, SAMPLES, BUDGET, || {
            rank_models(&families, &series, &cfg).expect("rank_models")
        })
    };
    SpeedupReport {
        benchmark: "rank_models".into(),
        cores: cores(),
        serial: time("serial", Parallelism::Serial),
        parallel: time("parallel_auto", Parallelism::Auto),
        identical,
        counters,
        evals_per_fit: fit_evals,
        per_family,
        context: vec![
            ("series".into(), "1990-93 payroll index".into()),
            ("families".into(), families.len().to_string()),
        ],
    }
}

fn bench_bootstrap() -> SpeedupReport {
    let series = Recession::R1990_93.payroll_index();
    let fit_config = FitConfig::default();
    let config = |p: Parallelism| BootstrapConfig {
        parallelism: p,
        ..BootstrapConfig::default()
    };

    let serial_out = bootstrap_band(
        &QuadraticFamily,
        &series,
        &fit_config,
        &config(Parallelism::Serial),
    )
    .expect("serial bootstrap_band");
    let parallel_out = bootstrap_band(
        &QuadraticFamily,
        &series,
        &fit_config,
        &config(Parallelism::Auto),
    )
    .expect("parallel bootstrap_band");
    let identical = bands_identical(&serial_out, &parallel_out);

    // One observed pass for the work counters (replicate ok/failed, base
    // fit evals).
    let rec = Arc::new(RecordingObserver::new());
    bootstrap_band_with(
        &QuadraticFamily,
        &series,
        &fit_config,
        &config(Parallelism::Serial),
        &Control::unbounded().observe(rec.clone()),
    )
    .expect("observed bootstrap_band");
    let events = rec.take();
    let fit_evals = evals_per_fit(&events);
    let counters = run_counters(&RunReport::from_events(events));

    let time = |name: &str, p: Parallelism| -> Measurement {
        let cfg = config(p);
        bench_with_budget(name, WARMUP, SAMPLES, BUDGET, || {
            bootstrap_band(&QuadraticFamily, &series, &fit_config, &cfg).expect("bootstrap_band")
        })
    };
    SpeedupReport {
        benchmark: "bootstrap_band".into(),
        cores: cores(),
        serial: time("serial", Parallelism::Serial),
        parallel: time("parallel_auto", Parallelism::Auto),
        identical,
        counters,
        evals_per_fit: fit_evals,
        per_family: Vec::new(),
        context: vec![
            ("series".into(), "1990-93 payroll index".into()),
            ("family".into(), "Quadratic".into()),
            (
                "replicates".into(),
                BootstrapConfig::default().replicates.to_string(),
            ),
        ],
    }
}

/// Writes the baseline JSON, or refuses — without touching any existing
/// file — when the parallel output was not bit-identical to the serial
/// one. A broken determinism contract must never silently replace a good
/// baseline with a tainted one.
fn write_report(path: &str, report: &SpeedupReport) -> bool {
    if !report.identical {
        eprintln!(
            "{}: parallel output differs from serial — determinism contract broken; \
             refusing to overwrite {path}",
            report.benchmark
        );
        return false;
    }
    std::fs::write(path, report.to_json()).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!(
        "{:14} cores={} serial={:.1}ms parallel={:.1}ms speedup={:.2}x identical={} -> {path}",
        report.benchmark,
        report.cores,
        report.serial.min_ns() as f64 / 1e6,
        report.parallel.min_ns() as f64 / 1e6,
        report.speedup(),
        report.identical,
    );
    true
}

/// The scenario × noise × length grid behind `BENCH_scenarios.json`:
/// four scenario stories (a V shape, a W shape, a step outage, and a
/// stochastic Poisson outage process) at two noise settings and two grid
/// lengths.
fn scenario_grid() -> Vec<(String, String, ScenarioSpec)> {
    let noises = [
        ("clean", Noise::None),
        (
            "gaussian-1e-3",
            Noise::Gaussian {
                sd: 0.001,
                seed: 42,
            },
        ),
    ];
    let lengths = [48usize, 96];
    let mut grid = Vec::new();
    for n in lengths {
        for (noise_label, noise) in noises {
            let poisson = ScenarioSpec {
                n,
                shocks: Vec::new(),
                events: Some(EventProcess {
                    outage_rate: 0.08,
                    mean_restore: 5.0,
                    mean_depth: 0.05,
                    max_depth: 0.2,
                    seed: 42,
                    max_events: EventProcess::DEFAULT_MAX_EVENTS,
                }),
                drift: Drift::None,
                noise,
                floor: Some(0.0),
            };
            let cells: [(String, ScenarioSpec); 4] = [
                ("shape-V".into(), ShapeKind::V.scenario(n, 42)),
                ("shape-W".into(), ShapeKind::W.scenario(n, 42)),
                ("step-outage".into(), {
                    let mut s = catalog::step_outage(42);
                    s.n = n;
                    s
                }),
                ("poisson-outages".into(), poisson),
            ];
            for (name, mut spec) in cells {
                spec.noise = noise;
                grid.push((name, noise_label.to_string(), spec));
            }
        }
    }
    grid
}

/// Scenario-sweep baseline: every grid cell is generated, ranked under
/// `rank_models_supervised` serially and with `Fixed(2)` consumers, the
/// two rankings are required to be bit-identical, and the winner's fit
/// quality is recorded.
fn bench_scenarios() -> ScenarioSweepReport {
    let families: Vec<&dyn ModelFamily> =
        vec![&QuadraticFamily, &CompetingRisksFamily, &QuarticFamily];
    let config = |p: Parallelism| FitConfig {
        parallelism: p,
        ..FitConfig::default()
    };
    let rank = |series: &resilience_data::PerformanceSeries, p: Parallelism| -> Ranking {
        rank_models_supervised(
            &families,
            series,
            &config(p),
            &ExecPolicy::default(),
            &Control::unbounded(),
        )
        .expect("scenario rank_models_supervised")
    };

    let mut identical = true;
    let mut cells = Vec::new();
    for (name, noise_label, spec) in scenario_grid() {
        let series = spec
            .generate(format!("{name}/{noise_label}/n{}", spec.n))
            .expect("scenario grid specs are valid");
        let serial = rank(&series, Parallelism::Serial);
        let fixed2 = rank(&series, Parallelism::Fixed(2));
        if !rankings_identical(&serial, &fixed2) {
            eprintln!(
                "scenario sweep: {name}/{noise_label}/n{} rankings differ",
                spec.n
            );
            identical = false;
        }
        let top = &serial.rows[0];
        cells.push(ScenarioCell {
            scenario: name,
            noise: noise_label,
            n: spec.n,
            winner: top.family_name.to_string(),
            r2_adj: top.r2_adj,
            sse: top.sse,
        });
    }
    ScenarioSweepReport {
        cores: cores(),
        identical,
        cells,
    }
}

/// Writes the scenario-sweep baseline, refusing — like [`write_report`]
/// — when any cell broke the determinism contract.
fn write_scenario_report(path: &str, report: &ScenarioSweepReport) -> bool {
    if !report.identical {
        eprintln!(
            "scenario_sweep: serial vs Fixed(2) rankings differ — determinism contract broken; \
             refusing to overwrite {path}"
        );
        return false;
    }
    std::fs::write(path, report.to_json()).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!(
        "scenario_sweep cells={} identical={} -> {path}",
        report.cells.len(),
        report.identical
    );
    true
}

/// Fast scenario-engine guard for `scripts/verify.sh`: the canonical
/// scenario set must generate deterministically (two generations are
/// bit-identical) and rank deterministically (serial vs `Fixed(2)`
/// supervised rankings bit-identical) for every scenario.
fn scenario_smoke() -> bool {
    let families: Vec<&dyn ModelFamily> = vec![&QuadraticFamily, &CompetingRisksFamily];
    let config = |p: Parallelism| FitConfig {
        parallelism: p,
        ..FitConfig::default()
    };
    let mut ok = true;
    for (name, spec) in catalog::canonical_set(42) {
        let series = spec.generate(name.clone()).expect("canonical scenario");
        let again = spec.generate(name.clone()).expect("canonical scenario");
        let same_bits = series
            .values()
            .iter()
            .zip(again.values())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        if !same_bits {
            eprintln!("scenario smoke: {name} regenerated with different bits");
            ok = false;
        }
        let serial = rank_models_supervised(
            &families,
            &series,
            &config(Parallelism::Serial),
            &ExecPolicy::default(),
            &Control::unbounded(),
        )
        .expect("serial scenario ranking");
        let fixed2 = rank_models_supervised(
            &families,
            &series,
            &config(Parallelism::Fixed(2)),
            &ExecPolicy::default(),
            &Control::unbounded(),
        )
        .expect("fixed(2) scenario ranking");
        if !rankings_identical(&serial, &fixed2) {
            eprintln!("scenario smoke: {name} serial vs Fixed(2) rankings differ");
            ok = false;
        }
    }
    println!("scenario smoke: canonical set deterministic={ok}");
    ok
}

/// CI ceiling for the median evals-per-fit of one `rank_models` pass
/// over the six paper families on 1990-93 (scripts/verify.sh `--smoke`).
/// The §11 speed layer (basin-finding Nelder–Mead + analytic-Jacobian
/// polish) lands the median near 635; the ceiling leaves headroom for
/// tolerance tweaks while still catching a regression to the pre-§11
/// exhaustive-simplex profile (median well above 2000).
const SMOKE_EVALS_PER_FIT_CEILING: u64 = 1200;

/// Fast determinism + work-profile guard for `scripts/verify.sh`: one
/// serial-vs-`Fixed(2)` `rank_models` comparison must be bit-identical,
/// and the median evals-per-fit must stay under
/// [`SMOKE_EVALS_PER_FIT_CEILING`]. No baseline files are touched.
fn smoke() -> bool {
    let series = Recession::R1990_93.payroll_index();
    let mixtures = MixtureFamily::paper_combinations();
    let families = paper_families(&mixtures);
    let config = |p: Parallelism| FitConfig {
        parallelism: p,
        ..FitConfig::default()
    };

    let serial =
        rank_models(&families, &series, &config(Parallelism::Serial)).expect("serial rank_models");
    let fixed2 = rank_models(&families, &series, &config(Parallelism::Fixed(2)))
        .expect("fixed(2) rank_models");
    let identical = rankings_identical(&serial, &fixed2);

    let rec = Arc::new(RecordingObserver::new());
    rank_models_supervised(
        &families,
        &series,
        &config(Parallelism::Serial),
        &ExecPolicy::default(),
        &Control::unbounded().observe(rec.clone()),
    )
    .expect("observed rank_models");
    let evals = evals_per_fit(&rec.take());
    let median = median_u64(&evals).unwrap_or(0);

    println!(
        "smoke: identical={identical} evals_per_fit={evals:?} median={median} (ceiling {SMOKE_EVALS_PER_FIT_CEILING})"
    );
    if !identical {
        eprintln!("smoke: serial vs Fixed(2) rank_models outputs differ — determinism broken");
    }
    if median > SMOKE_EVALS_PER_FIT_CEILING {
        eprintln!(
            "smoke: median evals-per-fit {median} exceeds ceiling {SMOKE_EVALS_PER_FIT_CEILING}"
        );
    }
    identical && median <= SMOKE_EVALS_PER_FIT_CEILING
}

/// Runs the fleet repeatability evaluation on `grid`, writes the
/// baseline to `path` when every gate holds, and reports the verdict.
/// Wall-clock goes to stdout only — the JSON is a pure function of the
/// grid, so repeated CI runs regenerate identical bytes.
fn run_fleet_mode(path: &str, report: &FleetReport) -> bool {
    if !report.gates_pass() {
        eprintln!(
            "fleet: repeatability gates failed (rerun={} parallel={} rollup={}) — \
             refusing to overwrite {path}",
            report.identical_rerun, report.identical_parallel, report.identical_rollup
        );
        return false;
    }
    std::fs::write(path, report.to_json()).unwrap_or_else(|e| panic!("write {path}: {e}"));
    let wall_ms: Vec<String> = report
        .wall_ns
        .iter()
        .map(|ns| format!("{:.1}", *ns as f64 / 1e6))
        .collect();
    println!(
        "fleet          cells={} families={} runs={} gates=pass digest={:016x} \
         median_evals_per_fit={} wall_ms=[{}] -> {path}",
        report.store.len(),
        report.families.len(),
        report.runs,
        report.store.digest(),
        report.median_evals_per_fit,
        wall_ms.join(", "),
    );
    true
}

/// Runs the chaos-smoke evaluation (`bench fleet --chaos-smoke`): the
/// 64-cell CI grid under the fixed chaos plan, gated on no-abort,
/// well-formed survivors, byte-identical stores + event JSONL across
/// serial ×2 and `Fixed(2)` passes, accounted injection, and bounded
/// retries. Writes `BENCH_chaos.json` only when every gate holds.
fn run_chaos_mode(path: &str, report: &ChaosReport) -> bool {
    if !report.gates_pass() {
        eprintln!(
            "chaos: gates failed (no_abort={} well_formed={} rerun={} parallel={} \
             accounted={} retries_bounded={}; injected={} breaker_opened={} half_open={} \
             quarantined={} retries={}/{}) — refusing to overwrite {path}",
            report.no_abort,
            report.well_formed,
            report.identical_rerun,
            report.identical_parallel,
            report.chaos_accounted,
            report.retries_bounded,
            report.chaos_injected,
            report.breaker_opened,
            report.breaker_half_open,
            report.cells_quarantined,
            report.retries,
            report.retry_ceiling,
        );
        return false;
    }
    std::fs::write(path, report.to_json()).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!(
        "chaos          cells={} injected={} breaker_opened={} half_open={} quarantined={} \
         retries={}/{} gates=pass digest={:016x} -> {path}",
        report.store.len(),
        report.chaos_injected,
        report.breaker_opened,
        report.breaker_half_open,
        report.cells_quarantined,
        report.retries,
        report.retry_ceiling,
        report.store.digest(),
    );
    true
}

/// Runs the observability gate evaluation (`bench fleet --obs-smoke`):
/// the 64-cell CI grid three times, gated on byte-identical logs, span
/// trees, metrics expositions, and stores plus full work attribution and
/// per-family evaluation ceilings. Writes `BENCH_obs.json` only when
/// every gate holds; with `OBS_SMOKE_DIR` set, also writes the three
/// JSONL logs and the metrics/tree renders there so CI can exercise
/// `obsctl` against real output.
fn run_obs_mode(path: &str, report: &ObsSmokeReport, artifacts: &ObsSmokeArtifacts) -> bool {
    if let Ok(dir) = std::env::var("OBS_SMOKE_DIR") {
        let dir = std::path::Path::new(&dir);
        let write = |name: &str, bytes: &str| {
            std::fs::write(dir.join(name), bytes)
                .unwrap_or_else(|e| panic!("write {}/{name}: {e}", dir.display()));
        };
        write("fleet_serial.jsonl", &artifacts.serial_jsonl);
        write("fleet_rerun.jsonl", &artifacts.rerun_jsonl);
        write("fleet_fixed2.jsonl", &artifacts.fixed2_jsonl);
        write("metrics.prom", &artifacts.metrics_text);
        write("tree.txt", &artifacts.tree_text);
    }
    if !report.gates_pass() {
        eprintln!(
            "obs: gates failed (log={} tree={} metrics={} store={} cells={} \
             attributed={} budget={}) — refusing to overwrite {path}",
            report.identical_log,
            report.identical_tree,
            report.identical_metrics,
            report.identical_store,
            report.cells_covered,
            report.work_attributed,
            report.within_budget,
        );
        for w in &report.family_work {
            if w.evaluations > w.ceiling {
                eprintln!(
                    "obs: {} burned {} evaluations (ceiling {})",
                    w.family, w.evaluations, w.ceiling
                );
            }
        }
        return false;
    }
    std::fs::write(path, report.to_json()).unwrap_or_else(|e| panic!("write {path}: {e}"));
    let work: Vec<String> = report
        .family_work
        .iter()
        .map(|w| format!("{}={}/{}", w.family, w.evaluations, w.ceiling))
        .collect();
    println!(
        "obs            cells={} events={} gates=pass evals=[{}] -> {path}",
        report.cells,
        report.events,
        work.join(", "),
    );
    true
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        if !smoke() {
            std::process::exit(1);
        }
        return;
    }
    if std::env::args().any(|a| a == "--scenario-smoke") {
        if !scenario_smoke() {
            std::process::exit(1);
        }
        return;
    }
    if std::env::args().any(|a| a == "--obs-smoke") {
        // `bench fleet --obs-smoke`: the 64-cell CI grid through the
        // observability gates (byte-identical logs / span trees / metrics
        // across serial ×2 + Fixed(2), full work attribution, per-family
        // evaluation ceilings) → `BENCH_obs.json`. Checked before the
        // `fleet` branch: the invocation carries the `fleet` word too.
        let families: Vec<&dyn ModelFamily> = vec![&QuadraticFamily, &CompetingRisksFamily];
        let (report, artifacts) = evaluate_obs_smoke(&smoke_grid(), &families);
        if !run_obs_mode("BENCH_obs.json", &report, &artifacts) {
            std::process::exit(1);
        }
        return;
    }
    if std::env::args().any(|a| a == "--chaos-smoke") {
        // `bench fleet --chaos-smoke`: the 64-cell CI grid under the
        // fixed chaos plan with the breaker armed → `BENCH_chaos.json`.
        let families: Vec<&dyn ModelFamily> = vec![&QuadraticFamily, &CompetingRisksFamily];
        // Forced panics are the *point* of this mode; the supervisor
        // catches every one. Silence the default hook so CI logs carry
        // the verdict, not dozens of intentional backtraces.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let report = evaluate_chaos_fleet(&smoke_grid(), &families);
        std::panic::set_hook(hook);
        if !run_chaos_mode("BENCH_chaos.json", &report) {
            std::process::exit(1);
        }
        return;
    }
    if std::env::args().any(|a| a == "fleet" || a == "--fleet-smoke") {
        // `bench fleet --fleet-smoke` (or bare `--fleet-smoke`): the
        // 64-cell CI grid with the two bathtub families, double-run +
        // Fixed(2) identity gates, written as the checked-in baseline.
        // `bench fleet` alone: the 360-cell full sweep with the quartic
        // added, written alongside it.
        let smoke = std::env::args().any(|a| a == "--fleet-smoke");
        let (path, grid, families): (&str, _, Vec<&dyn ModelFamily>) = if smoke {
            (
                "BENCH_fleet.json",
                smoke_grid(),
                vec![&QuadraticFamily, &CompetingRisksFamily],
            )
        } else {
            (
                "BENCH_fleet_full.json",
                full_grid(),
                vec![&QuadraticFamily, &CompetingRisksFamily, &QuarticFamily],
            )
        };
        if !run_fleet_mode(path, &evaluate_fleet(&grid, &families)) {
            std::process::exit(1);
        }
        return;
    }
    if std::env::args().any(|a| a == "--scenarios") {
        if !write_scenario_report("BENCH_scenarios.json", &bench_scenarios()) {
            std::process::exit(1);
        }
        return;
    }
    println!(
        "predictive-resilience micro-bench (warmup {WARMUP}, min of {SAMPLES}, {} cores)",
        cores()
    );
    let mut ok = true;
    ok &= write_report("BENCH_fitting.json", &bench_fitting());
    ok &= write_report("BENCH_bootstrap.json", &bench_bootstrap());
    ok &= write_scenario_report("BENCH_scenarios.json", &bench_scenarios());
    if !ok {
        std::process::exit(1);
    }
}
