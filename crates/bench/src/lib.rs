//! Shared experiment drivers for the reproduction harness.
//!
//! Each public function regenerates one table or figure of *Predictive
//! Resilience Modeling* (Silva et al., RWS 2022) and returns it as a
//! rendered text block. The `repro` binary prints them; the `bench`
//! binary times the underlying computations with the in-repo [`harness`]
//! (no criterion — the workspace builds offline). DESIGN.md §4 maps each
//! experiment to the modules it exercises.

pub mod chaos;
pub mod fleet;
pub mod harness;
pub mod obs_smoke;

use resilience_core::analysis::{band_series, evaluate_model, metrics_comparison, ModelEvaluation};
use resilience_core::bathtub::{CompetingRisksFamily, QuadraticFamily, QuarticFamily};
use resilience_core::mixture::MixtureFamily;
use resilience_core::model::ModelFamily;
use resilience_core::report::{fmt_metric, fmt_percent, Table};
use resilience_core::CoreError;
use resilience_data::recessions::Recession;
use resilience_data::scenario::ShapeKind;
use resilience_data::PerformanceSeries;

/// Confidence level used throughout the paper (95 % intervals).
pub const ALPHA: f64 = 0.05;

/// Eq. 21 weight used in the paper's Tables II and IV.
pub const METRIC_WEIGHT: f64 = 0.5;

/// Holdout horizon for the bathtub experiments (the paper fits the first
/// `n − 5` months; its Fig. 3 marks the boundary at t = 42 of 48).
#[must_use]
pub fn bathtub_holdout(series: &PerformanceSeries) -> usize {
    // 2020-21 has only 24 observations; hold out proportionally fewer.
    if series.len() >= 40 {
        5
    } else {
        3
    }
}

/// Holdout for the mixture experiments: the paper trains on 90 % of each
/// series.
#[must_use]
pub fn mixture_holdout(series: &PerformanceSeries) -> usize {
    let train = ((series.len() as f64) * 0.9).round() as usize;
    (series.len() - train).max(1)
}

/// Fig. 2 — the seven recession curves as aligned columns.
///
/// # Errors
///
/// Never fails on the embedded data; the `Result` accommodates future
/// user-supplied series.
pub fn fig2() -> Result<String, CoreError> {
    let curves: Vec<PerformanceSeries> = Recession::ALL
        .iter()
        .map(Recession::payroll_index)
        .collect();
    let mut headers = vec!["month".to_string()];
    headers.extend(curves.iter().map(|c| c.name().to_string()));
    let mut table = Table::new(headers);
    let max_len = curves.iter().map(PerformanceSeries::len).max().unwrap_or(0);
    for i in 0..max_len {
        let mut row = vec![i.to_string()];
        for c in &curves {
            row.push(if i < c.len() {
                format!("{:.4}", c.values()[i])
            } else {
                String::new()
            });
        }
        table.add_row(row);
    }
    Ok(format!(
        "Figure 2: Payroll change in U.S. recessions from peak employment\n\n{table}"
    ))
}

/// Evaluates the two bathtub families on one recession.
///
/// # Errors
///
/// Propagates fit/validation failures.
pub fn bathtub_evaluations(series: &PerformanceSeries) -> Result<Vec<ModelEvaluation>, CoreError> {
    let holdout = bathtub_holdout(series);
    Ok(vec![
        evaluate_model(&QuadraticFamily, series, holdout, ALPHA)?,
        evaluate_model(&CompetingRisksFamily, series, holdout, ALPHA)?,
    ])
}

/// Table I — validation of prediction using the two bathtub functions on
/// all seven recessions.
///
/// # Errors
///
/// Propagates fit/validation failures.
pub fn table1() -> Result<String, CoreError> {
    let mut table = Table::new(
        [
            "U.S. Recession",
            "n",
            "Measure",
            "Quadratic",
            "Competing Risks",
        ]
        .map(String::from)
        .to_vec(),
    );
    for recession in Recession::ALL {
        let series = recession.payroll_index();
        let evals = bathtub_evaluations(&series)?;
        let (q, cr) = (&evals[0].gof, &evals[1].gof);
        let rows: [(&str, String, String); 4] = [
            ("SSE", fmt_metric(q.sse), fmt_metric(cr.sse)),
            ("PMSE", fmt_metric(q.pmse), fmt_metric(cr.pmse)),
            ("r2_adj", fmt_metric(q.r2_adj), fmt_metric(cr.r2_adj)),
            ("EC", fmt_percent(q.ec), fmt_percent(cr.ec)),
        ];
        for (i, (measure, qv, crv)) in rows.into_iter().enumerate() {
            table.add_row(vec![
                if i == 0 {
                    recession.label().into()
                } else {
                    String::new()
                },
                if i == 0 {
                    series.len().to_string()
                } else {
                    String::new()
                },
                measure.to_string(),
                qv,
                crv,
            ]);
        }
    }
    Ok(format!(
        "Table I: Validation of prediction using two bathtub functions on data from seven U.S. recessions\n\n{table}"
    ))
}

/// Renders a fit-figure (observed, fitted, 95 % band) as a text series.
///
/// # Errors
///
/// Propagates fit/band failures.
pub fn fit_figure(
    title: &str,
    series: &PerformanceSeries,
    family: &dyn ModelFamily,
    holdout: usize,
) -> Result<String, CoreError> {
    let eval = evaluate_model(family, series, holdout, ALPHA)?;
    let band = band_series(&eval, series, ALPHA)?;
    let mut table = Table::new(
        ["t", "observed", "fitted", "ci_lower", "ci_upper", "inside"]
            .map(String::from)
            .to_vec(),
    );
    for (i, &t) in band.times.iter().enumerate() {
        let ci = &band.band[i];
        table.add_row(vec![
            format!("{t}"),
            format!("{:.5}", band.observed[i]),
            format!("{:.5}", band.predicted[i]),
            format!("{:.5}", ci.lower()),
            format!("{:.5}", ci.upper()),
            if ci.contains(band.observed[i]) {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
    }
    let train_boundary = series.times()[series.len() - holdout - 1];
    Ok(format!(
        "{title}\n(model: {}, training window ends at t = {train_boundary}, EC = {})\n\n{table}",
        eval.family_name,
        fmt_percent(eval.gof.ec)
    ))
}

/// Fig. 3 — quadratic model fit to the 2001-05 recession with 95 % CI.
///
/// # Errors
///
/// Propagates fit/band failures.
pub fn fig3() -> Result<String, CoreError> {
    let series = Recession::R2001_05.payroll_index();
    let holdout = bathtub_holdout(&series);
    fit_figure(
        "Figure 3: Quadratic model fit to 2001-05 U.S. recession data",
        &series,
        &QuadraticFamily,
        holdout,
    )
}

/// Fig. 4 — competing-risks model fit to the 1990-93 recession with 95 %
/// CI.
///
/// # Errors
///
/// Propagates fit/band failures.
pub fn fig4() -> Result<String, CoreError> {
    let series = Recession::R1990_93.payroll_index();
    let holdout = bathtub_holdout(&series);
    fit_figure(
        "Figure 4: Competing risks model fit to 1990-93 U.S. recession data",
        &series,
        &CompetingRisksFamily,
        holdout,
    )
}

fn metrics_table(
    title: &str,
    series: &PerformanceSeries,
    evals: Vec<ModelEvaluation>,
) -> Result<String, CoreError> {
    let mut headers = vec!["Metric".to_string(), "Actual".to_string()];
    for e in &evals {
        headers.push(e.family_name.to_string());
        headers.push(format!("δ ({})", e.family_name));
    }
    let rows = metrics_comparison(&evals, series, METRIC_WEIGHT)?;
    let mut table = Table::new(headers);
    for row in rows {
        let mut cells = vec![row.kind.label().to_string(), fmt_metric(row.actual)];
        for (_, predicted, delta) in &row.predictions {
            cells.push(fmt_metric(*predicted));
            cells.push(fmt_metric(*delta));
        }
        table.add_row(cells);
    }
    Ok(format!("{title}\n\n{table}"))
}

/// Table II — interval-based resilience metrics for the two bathtub
/// models on the 1990-93 recession.
///
/// # Errors
///
/// Propagates fit/metric failures.
pub fn table2() -> Result<String, CoreError> {
    let series = Recession::R1990_93.payroll_index();
    let evals = bathtub_evaluations(&series)?;
    metrics_table(
        "Table II: Interval-based resilience metrics using bathtub shaped functions and 1990-93 U.S. recession data (α = 0.5)",
        &series,
        evals,
    )
}

/// Evaluates the paper's four mixture combinations on one recession.
///
/// # Errors
///
/// Propagates fit/validation failures.
pub fn mixture_evaluations(series: &PerformanceSeries) -> Result<Vec<ModelEvaluation>, CoreError> {
    let holdout = mixture_holdout(series);
    MixtureFamily::paper_combinations()
        .iter()
        .map(|fam| evaluate_model(fam, series, holdout, ALPHA))
        .collect()
}

/// Table III — validation of prediction using mixture distributions on
/// all seven recessions.
///
/// # Errors
///
/// Propagates fit/validation failures.
pub fn table3() -> Result<String, CoreError> {
    let mut table = Table::new(
        [
            "U.S. Recession",
            "Measure",
            "Exp-Exp",
            "Wei-Exp",
            "Exp-Wei",
            "Wei-Wei",
        ]
        .map(String::from)
        .to_vec(),
    );
    for recession in Recession::ALL {
        let series = recession.payroll_index();
        let evals = mixture_evaluations(&series)?;
        type Extractor = Box<dyn Fn(&ModelEvaluation) -> String>;
        let measures: [(&str, Extractor); 4] = [
            ("SSE", Box::new(|e| fmt_metric(e.gof.sse))),
            ("PMSE", Box::new(|e| fmt_metric(e.gof.pmse))),
            ("r2_adj", Box::new(|e| fmt_metric(e.gof.r2_adj))),
            ("EC", Box::new(|e| fmt_percent(e.gof.ec))),
        ];
        for (i, (name, extract)) in measures.iter().enumerate() {
            let mut row = vec![
                if i == 0 {
                    recession.label().into()
                } else {
                    String::new()
                },
                (*name).to_string(),
            ];
            for e in &evals {
                row.push(extract(e));
            }
            table.add_row(row);
        }
    }
    Ok(format!(
        "Table III: Validation of prediction using mixture distributions on data from seven U.S. recessions (a2(t) = β·ln t)\n\n{table}"
    ))
}

/// Fig. 5 — Weibull-Exponential mixture fit to the 1990-93 recession.
///
/// # Errors
///
/// Propagates fit/band failures.
pub fn fig5() -> Result<String, CoreError> {
    let series = Recession::R1990_93.payroll_index();
    let holdout = mixture_holdout(&series);
    fit_figure(
        "Figure 5: Weibull-Exponential mixture fit to 1990-93 U.S. recession data",
        &series,
        &MixtureFamily::paper_combinations()[1],
        holdout,
    )
}

/// Fig. 6 — Exp-Wei and Wei-Wei mixture fits to the 1981-83 recession.
///
/// # Errors
///
/// Propagates fit/band failures.
pub fn fig6() -> Result<String, CoreError> {
    let series = Recession::R1981_83.payroll_index();
    let holdout = mixture_holdout(&series);
    let combos = MixtureFamily::paper_combinations();
    let exp_wei = fit_figure(
        "Figure 6a: Exponential-Weibull mixture fit to 1981-83 U.S. recession data",
        &series,
        &combos[2],
        holdout,
    )?;
    let wei_wei = fit_figure(
        "Figure 6b: Weibull-Weibull mixture fit to 1981-83 U.S. recession data",
        &series,
        &combos[3],
        holdout,
    )?;
    Ok(format!("{exp_wei}\n\n{wei_wei}"))
}

/// Table IV — interval-based resilience metrics for the four mixture
/// combinations on the 1990-93 recession.
///
/// # Errors
///
/// Propagates fit/metric failures.
pub fn table4() -> Result<String, CoreError> {
    let series = Recession::R1990_93.payroll_index();
    let evals = mixture_evaluations(&series)?;
    metrics_table(
        "Table IV: Interval-based resilience metrics using mixture distributions and 1990-93 U.S. recession data (α = 0.5)",
        &series,
        evals,
    )
}

/// Extension experiment — a controlled sweep over canonical V/U/W/L/J/K
/// shapes, fitting both bathtub families plus the quartic extension, to
/// reproduce the paper's conclusion (V/U fit, W/L/K break the two paper
/// families) and show the quartic recovering the W case.
///
/// # Errors
///
/// Propagates fit failures.
pub fn shape_sweep() -> Result<String, CoreError> {
    let mut table = Table::new(
        [
            "Shape",
            "Quadratic r2_adj",
            "Competing Risks r2_adj",
            "Quartic r2_adj",
        ]
        .map(String::from)
        .to_vec(),
    );
    for kind in ShapeKind::ALL {
        let series = kind.scenario(48, 42).generate(kind.to_string())?;
        let mut row = vec![kind.to_string()];
        for fam in [
            &QuadraticFamily as &dyn ModelFamily,
            &CompetingRisksFamily,
            &QuarticFamily,
        ] {
            let cell = match evaluate_model(fam, &series, 5, ALPHA) {
                Ok(e) => fmt_metric(e.gof.r2_adj),
                Err(_) => "fit failed".to_string(),
            };
            row.push(cell);
        }
        table.add_row(row);
    }
    Ok(format!(
        "Extension: adjusted R² of bathtub families (and the quartic extension) across canonical recession shapes\n\n{table}"
    ))
}

/// Extension experiment — ablation over the four recovery trends a₂(t)
/// for the Wei-Exp mixture on every recession.
///
/// # Errors
///
/// Propagates fit failures.
pub fn trend_ablation() -> Result<String, CoreError> {
    use resilience_core::mixture::{ComponentKind, Trend};
    let mut table = Table::new(
        ["U.S. Recession", "a2=β", "a2=βt", "a2=e^{βt}", "a2=β·ln t"]
            .map(String::from)
            .to_vec(),
    );
    for recession in Recession::ALL {
        let series = recession.payroll_index();
        let holdout = mixture_holdout(&series);
        let mut row = vec![recession.label().to_string()];
        for trend in Trend::ALL {
            let fam = MixtureFamily {
                f1: ComponentKind::Weibull,
                f2: ComponentKind::Exponential,
                trend,
            };
            let cell = match evaluate_model(&fam, &series, holdout, ALPHA) {
                Ok(e) => fmt_metric(e.gof.r2_adj),
                Err(_) => "fit failed".to_string(),
            };
            row.push(cell);
        }
        table.add_row(row);
    }
    Ok(format!(
        "Extension: Wei-Exp mixture adjusted R² under the four recovery trends of paper Eq. 7\n\n{table}"
    ))
}

/// Extension experiment — the W-shaped 1980 recession refit with the
/// [`resilience_core::extended::DoubleBathtubModel`]: the "additional
/// modeling effort" the paper's conclusion calls for.
///
/// # Errors
///
/// Propagates fit failures.
pub fn w_extension() -> Result<String, CoreError> {
    use resilience_core::extended::DoubleBathtubFamily;
    let series = Recession::R1980.payroll_index();
    let holdout = bathtub_holdout(&series);
    let mut table = Table::new(
        ["Model", "params", "SSE", "PMSE", "r2_adj", "EC"]
            .map(String::from)
            .to_vec(),
    );
    for fam in [
        &QuadraticFamily as &dyn ModelFamily,
        &CompetingRisksFamily,
        &DoubleBathtubFamily,
    ] {
        let e = evaluate_model(fam, &series, holdout, ALPHA)?;
        table.add_row(vec![
            e.family_name.to_string(),
            e.fit.params.len().to_string(),
            fmt_metric(e.gof.sse),
            fmt_metric(e.gof.pmse),
            fmt_metric(e.gof.r2_adj),
            fmt_percent(e.gof.ec),
        ]);
    }
    Ok(format!(
        "Extension: the W-shaped 1980 recession under the double-bathtub model\n\
         (the paper's families assume one degradation episode; the extension adds a delayed second episode)\n\n{table}"
    ))
}

/// Extension experiment — the L/K-shaped 2020-21 recession refit with the
/// [`resilience_core::extended::CrashRecoveryModel`].
///
/// # Errors
///
/// Propagates fit failures.
pub fn l_extension() -> Result<String, CoreError> {
    use resilience_core::extended::CrashRecoveryFamily;
    let series = Recession::R2020_21.payroll_index();
    let holdout = bathtub_holdout(&series);
    let mut table = Table::new(
        ["Model", "params", "SSE", "PMSE", "r2_adj", "EC"]
            .map(String::from)
            .to_vec(),
    );
    for fam in [
        &QuadraticFamily as &dyn ModelFamily,
        &CompetingRisksFamily,
        &CrashRecoveryFamily,
    ] {
        let e = evaluate_model(fam, &series, holdout, ALPHA)?;
        table.add_row(vec![
            e.family_name.to_string(),
            e.fit.params.len().to_string(),
            fmt_metric(e.gof.sse),
            fmt_metric(e.gof.pmse),
            fmt_metric(e.gof.r2_adj),
            fmt_percent(e.gof.ec),
        ]);
    }
    Ok(format!(
        "Extension: the L/K-shaped 2020-21 (COVID-19) recession under the crash-recovery model\n\
         (sudden crash + saturating partial recovery, with the asymptote free to sit below nominal)\n\n{table}"
    ))
}

/// Extension experiment — model selection across all candidate families
/// on each recession: AICc-ranked with BIC and adjusted R² shown.
///
/// # Errors
///
/// Propagates fit failures.
pub fn selection_table() -> Result<String, CoreError> {
    use resilience_core::extended::{CrashRecoveryFamily, DoubleBathtubFamily};
    use resilience_core::fit::FitConfig;
    use resilience_core::selection::rank_models;
    let mixtures = MixtureFamily::paper_combinations();
    let mut table = Table::new(
        [
            "U.S. Recession",
            "AICc rank",
            "Model",
            "k",
            "AICc",
            "BIC",
            "r2_adj",
        ]
        .map(String::from)
        .to_vec(),
    );
    for recession in Recession::ALL {
        let series = recession.payroll_index();
        let mut families: Vec<&dyn ModelFamily> = vec![
            &QuadraticFamily,
            &CompetingRisksFamily,
            &QuarticFamily,
            &DoubleBathtubFamily,
            &CrashRecoveryFamily,
        ];
        for fam in &mixtures {
            families.push(fam);
        }
        let ranking = rank_models(&families, &series, &FitConfig::default())?;
        for failure in &ranking.failures {
            table.add_row(vec![
                String::new(),
                "-".into(),
                failure.family_name.to_string(),
                "-".into(),
                format!("failed: {}", failure.reason),
                String::new(),
                String::new(),
            ]);
        }
        for (rank, row) in ranking.rows.iter().take(3).enumerate() {
            let (aicc, bic) = row
                .criteria
                .map(|c| (format!("{:.2}", c.aicc), format!("{:.2}", c.bic)))
                .unwrap_or_else(|| ("-inf".into(), "-inf".into()));
            table.add_row(vec![
                if rank == 0 {
                    recession.label().into()
                } else {
                    String::new()
                },
                (rank + 1).to_string(),
                row.family_name.to_string(),
                row.n_params.to_string(),
                aicc,
                bic,
                fmt_metric(row.r2_adj),
            ]);
        }
    }
    Ok(format!(
        "Extension: AICc model ranking (top 3) across all candidate families per recession\n\n{table}"
    ))
}

/// Extension experiment — normal-theory (Eq. 13) band vs residual
/// bootstrap prediction band on the 1990-93 data.
///
/// # Errors
///
/// Propagates fit/bootstrap failures.
pub fn bootstrap_comparison() -> Result<String, CoreError> {
    use resilience_core::bootstrap::{bootstrap_band, BootstrapConfig};
    use resilience_core::fit::FitConfig;
    let series = Recession::R1990_93.payroll_index();
    let eval = evaluate_model(&QuadraticFamily, &series, bathtub_holdout(&series), ALPHA)?;
    let band = band_series(&eval, &series, ALPHA)?;
    let boot = bootstrap_band(
        &QuadraticFamily,
        &series,
        &FitConfig::default(),
        &BootstrapConfig::default(),
    )?;
    let normal_ec = eval.gof.ec;
    let boot_ec = boot.coverage(&series)?;
    let normal_width: f64 =
        band.band.iter().map(|ci| ci.width()).sum::<f64>() / band.band.len() as f64;
    let boot_width: f64 = boot
        .lower
        .iter()
        .zip(&boot.upper)
        .map(|(l, u)| u - l)
        .sum::<f64>()
        / boot.lower.len() as f64;
    let mut table = Table::new(
        ["Band", "mean width", "empirical coverage"]
            .map(String::from)
            .to_vec(),
    );
    table.add_row(vec![
        "Normal theory (Eq. 13)".into(),
        format!("{normal_width:.5}"),
        fmt_percent(normal_ec),
    ]);
    table.add_row(vec![
        format!("Residual bootstrap ({} replicates)", boot.replicates),
        format!("{boot_width:.5}"),
        fmt_percent(boot_ec),
    ]);
    Ok(format!(
        "Extension: 95% interval construction on 1990-93 (quadratic model)\n\n{table}"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holdouts_match_paper_conventions() {
        let long = Recession::R1990_93.payroll_index();
        assert_eq!(bathtub_holdout(&long), 5);
        assert_eq!(mixture_holdout(&long), 5); // 48 − round(43.2)
        let short = Recession::R2020_21.payroll_index();
        assert_eq!(bathtub_holdout(&short), 3);
        assert_eq!(mixture_holdout(&short), 2); // 24 − round(21.6)
    }

    #[test]
    fn fig2_lists_all_recessions() {
        let out = fig2().unwrap();
        for r in Recession::ALL {
            assert!(out.contains(r.label()), "missing {r}");
        }
        assert!(out.lines().count() > 48);
    }
}
