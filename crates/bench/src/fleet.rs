//! Fleet-scale batch driver with repeatability gates (DESIGN.md §13).
//!
//! A *fleet run* generates every cell of a [`ScenarioGrid`]
//! (scenarios × noise models × lengths × seeds), fits all of them through
//! `rank_many_supervised` — work-stealing over the flattened
//! series × family job list — and streams the per-cell outcomes into a
//! columnar [`FleetStore`]. The store keeps winning SSE and adjusted R²
//! as raw `f64` bits, so "same results" is exact byte equality, never an
//! epsilon.
//!
//! [`evaluate_fleet`] is the repeatability evaluator behind
//! `bench fleet`: it runs the same fleet three times — twice serial, once
//! with `Fixed(2)` workers — and gates on
//!
//! 1. **rerun identity**: the two serial stores serialize to identical
//!    bytes (winners, SSE bits, obs roll-up);
//! 2. **parallel identity**: the `Fixed(2)` store and roll-up match the
//!    serial ones byte for byte.
//!
//! Per-cell deltas and the max-delta summary are recorded in
//! `BENCH_fleet.json` even though the gates force them to zero: if a
//! future change breaks bit-identity, the baseline diff shows *where* and
//! *by how much*, not just that a boolean flipped. Wall-clock is printed
//! to stdout only — the JSON is a pure function of the grid, so CI can
//! regenerate it and `git diff` stays clean.

use crate::harness::{json_escape, median_u64};
use resilience_core::fit::FitConfig;
use resilience_core::model::ModelFamily;
use resilience_core::runtime::{rank_many_supervised, Control, ExecPolicy};
use resilience_core::selection::Ranking;
use resilience_data::scenario::{GridScenario, NoiseLevel, ScenarioGrid, ShapeKind};
use resilience_data::PerformanceSeries;
use resilience_obs::{Event, HistogramId, RecordingObserver, RunReport, SpanTree};
use resilience_optim::Parallelism;
use std::sync::Arc;
// Sanctioned wall-clock: `wall_ns` is stdout-only progress reporting,
// never serialized into a baseline (`clippy.toml` bans `Instant`
// everywhere results are stored).
#[allow(clippy::disallowed_types)]
use std::time::Instant;

/// Sentinel bits recorded for a cell whose ranking failed outright (no
/// family produced a fit). `u64::MAX` is not the bit pattern of any
/// finite `f64`, so failed cells can never collide with a real SSE.
pub const FAILED_BITS: u64 = u64::MAX;

/// Sentinel bits for a *quarantined* cell: the supervisor saw every
/// family fail under chaos/breaker supervision and parked the cell
/// instead of aborting the fleet (DESIGN.md §14). Distinct from
/// [`FAILED_BITS`] so a baseline diff separates "legacy hard failure"
/// from "quarantined by the supervisor"; like it, never a finite `f64`.
pub const QUARANTINED_BITS: u64 = u64::MAX - 1;

/// Per-cell work attribution derived from the run's span tree
/// ([`SpanTree::build`] over the recorded events): the observability
/// plane's answer to "where did the evaluations go", stored next to the
/// fit results so baseline diffs localize work regressions to cells.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellWork {
    /// Objective evaluations attributed to the cell.
    pub evaluations: u64,
    /// Retry attempts attributed to the cell.
    pub retries: u64,
}

/// Work attributed to span-tree cell `cell` (zero when the tree has no
/// such cell — e.g. a store assembled without telemetry).
#[must_use]
pub fn cell_work(tree: &SpanTree, cell: usize) -> CellWork {
    tree.cells
        .get(cell)
        .map_or_else(CellWork::default, |c| CellWork {
            evaluations: c.evaluations(),
            retries: c.retries(),
        })
}

/// Columnar results store for one fleet run: one entry per grid cell, in
/// cell-index order, kept as per-column vectors (struct-of-arrays) so a
/// baseline diff reads column-wise and the serialized form is compact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetStore {
    /// Scenario axis label per cell.
    pub scenario: Vec<String>,
    /// Noise axis label per cell.
    pub noise: Vec<String>,
    /// Grid length per cell.
    pub n: Vec<usize>,
    /// Cell seed.
    pub seed: Vec<u64>,
    /// Winning family name, or `(failed)` when no family fit.
    pub winner: Vec<String>,
    /// Winner's SSE as raw `f64` bits ([`FAILED_BITS`] on failure).
    pub sse_bits: Vec<u64>,
    /// Winner's adjusted R² as raw `f64` bits ([`FAILED_BITS`] on
    /// failure).
    pub r2_bits: Vec<u64>,
    /// Families that produced a ranked row for this cell.
    pub ranked: Vec<u32>,
    /// Families that failed (degraded ranking) for this cell.
    pub failed: Vec<u32>,
    /// Typed failure count for a quarantined cell, `0` otherwise — the
    /// sentinel column chaos fleets park all-failing cells in.
    pub quarantined: Vec<u32>,
    /// Objective evaluations attributed to the cell by the span tree.
    pub evals: Vec<u64>,
    /// Retry attempts attributed to the cell by the span tree.
    pub retries: Vec<u64>,
}

impl FleetStore {
    /// Empty store with room for `cells` entries per column.
    #[must_use]
    pub fn with_capacity(cells: usize) -> FleetStore {
        FleetStore {
            scenario: Vec::with_capacity(cells),
            noise: Vec::with_capacity(cells),
            n: Vec::with_capacity(cells),
            seed: Vec::with_capacity(cells),
            winner: Vec::with_capacity(cells),
            sse_bits: Vec::with_capacity(cells),
            r2_bits: Vec::with_capacity(cells),
            ranked: Vec::with_capacity(cells),
            failed: Vec::with_capacity(cells),
            quarantined: Vec::with_capacity(cells),
            evals: Vec::with_capacity(cells),
            retries: Vec::with_capacity(cells),
        }
    }

    /// Number of cells stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.scenario.len()
    }

    /// Whether the store has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scenario.is_empty()
    }

    /// Appends one cell's outcome. `ranking: None` records a failed cell
    /// (sentinel bits, zero ranked rows). `work` is the span-tree
    /// attribution for the cell ([`cell_work`]).
    pub fn push(
        &mut self,
        cell: &resilience_data::scenario::GridCell,
        ranking: Option<&Ranking>,
        work: CellWork,
    ) {
        self.scenario.push(cell.scenario.clone());
        self.noise.push(cell.noise.clone());
        self.n.push(cell.n);
        self.seed.push(cell.seed);
        match ranking {
            Some(r) => {
                let top = &r.rows[0];
                self.winner.push(top.family_name.to_string());
                self.sse_bits.push(top.sse.to_bits());
                self.r2_bits.push(top.r2_adj.to_bits());
                self.ranked.push(r.rows.len() as u32);
                self.failed.push(r.failures.len() as u32);
            }
            None => {
                self.winner.push("(failed)".to_string());
                self.sse_bits.push(FAILED_BITS);
                self.r2_bits.push(FAILED_BITS);
                self.ranked.push(0);
                self.failed.push(0);
            }
        }
        self.quarantined.push(0);
        self.evals.push(work.evaluations);
        self.retries.push(work.retries);
    }

    /// Appends one *quarantined* cell: every family failed under
    /// supervision, the supervisor parked the cell, and the store records
    /// the typed failure count in the sentinel column
    /// ([`QUARANTINED_BITS`] in the bit columns). `work` still records
    /// the evaluations the cell burned before quarantine.
    pub fn push_quarantined(
        &mut self,
        cell: &resilience_data::scenario::GridCell,
        failures: u32,
        work: CellWork,
    ) {
        self.scenario.push(cell.scenario.clone());
        self.noise.push(cell.noise.clone());
        self.n.push(cell.n);
        self.seed.push(cell.seed);
        self.winner.push("(quarantined)".to_string());
        self.sse_bits.push(QUARANTINED_BITS);
        self.r2_bits.push(QUARANTINED_BITS);
        self.ranked.push(0);
        self.failed.push(failures);
        self.quarantined.push(failures.max(1));
        self.evals.push(work.evaluations);
        self.retries.push(work.retries);
    }

    /// The per-column JSON object — the byte string the repeatability
    /// gates compare and the digest hashes.
    #[must_use]
    pub fn columns_json(&self) -> String {
        fn str_col(name: &str, vals: &[String], out: &mut Vec<String>) {
            let items: Vec<String> = vals
                .iter()
                .map(|v| format!("\"{}\"", json_escape(v)))
                .collect();
            out.push(format!("    \"{name}\": [{}]", items.join(", ")));
        }
        fn num_col<T: std::fmt::Display>(name: &str, vals: &[T], out: &mut Vec<String>) {
            let items: Vec<String> = vals.iter().map(T::to_string).collect();
            out.push(format!("    \"{name}\": [{}]", items.join(", ")));
        }
        let mut cols = Vec::new();
        str_col("scenario", &self.scenario, &mut cols);
        str_col("noise", &self.noise, &mut cols);
        num_col("n", &self.n, &mut cols);
        num_col("seed", &self.seed, &mut cols);
        str_col("winner", &self.winner, &mut cols);
        num_col("sse_bits", &self.sse_bits, &mut cols);
        num_col("r2_bits", &self.r2_bits, &mut cols);
        num_col("ranked", &self.ranked, &mut cols);
        num_col("failed", &self.failed, &mut cols);
        num_col("quarantined", &self.quarantined, &mut cols);
        num_col("evals", &self.evals, &mut cols);
        num_col("retries", &self.retries, &mut cols);
        format!("{{\n{}\n  }}", cols.join(",\n"))
    }

    /// FNV-1a digest of [`FleetStore::columns_json`] — a one-line
    /// fingerprint for logs and quick baseline comparisons.
    #[must_use]
    pub fn digest(&self) -> u64 {
        fnv1a(self.columns_json().as_bytes())
    }
}

/// 64-bit FNV-1a over a byte string.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One fleet pass: the columnar store plus the observed work roll-up.
#[derive(Debug)]
pub struct FleetRun {
    /// Per-cell results, in cell-index order.
    pub store: FleetStore,
    /// Aggregated telemetry for the whole pass (deterministic work
    /// counters — no wall-clock).
    pub report: RunReport,
    /// Raw evals-per-fit observations in replay (= job) order.
    pub evals_per_fit: Vec<u64>,
    /// Every event of the pass in replay order — the input for span-tree
    /// reconstruction, JSONL export, and log diffing.
    pub events: Vec<Event>,
    /// Wall-clock for the ranking pass, nanoseconds. Informational only;
    /// never serialized into the baseline.
    pub wall_ns: u128,
}

impl FleetRun {
    /// The pass's events serialized as JSONL, byte-identical across runs
    /// of the same grid.
    #[must_use]
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            event.write_json(&mut out);
            out.push('\n');
        }
        out
    }
}

/// Runs one fleet pass: generates every grid cell, ranks all of them via
/// `rank_many_supervised` under `parallelism`, and collects the store and
/// the observed roll-up.
///
/// Per-cell ranking failures degrade to `(failed)` rows in the store —
/// one poisoned cell must not abort a fleet.
///
/// # Panics
///
/// Panics when a grid cell's spec fails to generate (grid specs are
/// valid by construction) or when `families` is empty.
#[must_use]
#[allow(clippy::disallowed_types)] // wall_ns is stdout-only, never stored
pub fn run_fleet(
    grid: &ScenarioGrid,
    families: &[&dyn ModelFamily],
    parallelism: Parallelism,
) -> FleetRun {
    assert!(!families.is_empty(), "fleet needs at least one family");
    let cells: Vec<_> = grid.cells().collect();
    let series: Vec<PerformanceSeries> = cells
        .iter()
        .map(|c| {
            c.generate()
                .unwrap_or_else(|e| panic!("grid cell {}: {e}", c.series_name()))
        })
        .collect();
    let config = FitConfig {
        parallelism,
        ..FitConfig::default()
    };
    let rec = Arc::new(RecordingObserver::new());
    let start = Instant::now();
    let rankings = rank_many_supervised(
        families,
        &series,
        &config,
        &ExecPolicy::default(),
        &Control::unbounded().observe(rec.clone()),
    );
    let wall_ns = start.elapsed().as_nanos();
    let events = rec.take();
    let evals_per_fit: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            Event::Hist {
                id: HistogramId::EvalsPerFit,
                value,
            } => Some(*value),
            _ => None,
        })
        .collect();
    let report = RunReport::from_events(events.iter().copied());
    let tree = SpanTree::build(&events);
    let mut store = FleetStore::with_capacity(cells.len());
    for (i, (cell, ranking)) in cells.iter().zip(&rankings).enumerate() {
        store.push(cell, ranking.as_ref().ok(), cell_work(&tree, i));
    }
    FleetRun {
        store,
        report,
        evals_per_fit,
        events,
        wall_ns,
    }
}

/// Max-delta summary across all cells of the repeatability evaluation.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxDelta {
    /// Largest |SSE(run 1) − SSE(run 2)| over cells (serial rerun).
    pub sse_rerun: f64,
    /// Largest |R²(run 1) − R²(run 2)| over cells (serial rerun).
    pub r2_rerun: f64,
    /// Largest |SSE(serial) − SSE(Fixed(2))| over cells.
    pub sse_parallel: f64,
    /// Largest |R²(serial) − R²(Fixed(2))| over cells.
    pub r2_parallel: f64,
}

/// Variance band across the seed axis for one (scenario, noise, n) group:
/// how much the winning fit moves between independent realizations of the
/// same story. This is *expected* spread (different noise draws), as
/// opposed to the per-cell deltas, which gate on exact repeatability of
/// identical inputs.
#[derive(Debug, Clone)]
pub struct VarianceBand {
    /// Scenario axis label.
    pub scenario: String,
    /// Noise axis label.
    pub noise: String,
    /// Grid length.
    pub n: usize,
    /// Number of seeds in the group.
    pub seeds: usize,
    /// Mean winning SSE across seeds.
    pub sse_mean: f64,
    /// Smallest winning SSE across seeds.
    pub sse_min: f64,
    /// Largest winning SSE across seeds.
    pub sse_max: f64,
    /// Whether every seed crowned the same family.
    pub winner_unanimous: bool,
}

/// The repeatability evaluation behind `BENCH_fleet.json`: one fleet's
/// results plus the identity gates and delta/variance summaries from
/// running it three times.
#[derive(Debug)]
pub struct FleetReport {
    /// Family names fitted in every cell.
    pub families: Vec<String>,
    /// The canonical (first serial run) results store.
    pub store: FleetStore,
    /// |SSE delta| per cell between the two serial runs.
    pub delta_sse_rerun: Vec<f64>,
    /// |R² delta| per cell between the two serial runs.
    pub delta_r2_rerun: Vec<f64>,
    /// |SSE delta| per cell between serial and `Fixed(2)`.
    pub delta_sse_parallel: Vec<f64>,
    /// |R² delta| per cell between serial and `Fixed(2)`.
    pub delta_r2_parallel: Vec<f64>,
    /// Gate 1: the two serial stores serialized to identical bytes.
    pub identical_rerun: bool,
    /// Gate 2: the `Fixed(2)` store matched the serial bytes.
    pub identical_parallel: bool,
    /// Gate 3: all three obs roll-ups serialized to identical bytes.
    pub identical_rollup: bool,
    /// Max-delta summary over all cells.
    pub max_delta: MaxDelta,
    /// Seed-axis variance bands per (scenario, noise, n) group.
    pub bands: Vec<VarianceBand>,
    /// Work roll-up of the canonical run (deterministic counters).
    pub rollup: RunReport,
    /// Total work across all three runs ([`RunReport::merge`] of the
    /// per-run roll-ups).
    pub total: RunReport,
    /// Number of fleet passes the evaluation ran.
    pub runs: usize,
    /// Median evals-per-fit of the canonical run.
    pub median_evals_per_fit: u64,
    /// Wall-clock per pass, nanoseconds — stdout only, never serialized.
    pub wall_ns: Vec<u128>,
}

impl FleetReport {
    /// Whether every repeatability gate held.
    #[must_use]
    pub fn gates_pass(&self) -> bool {
        self.identical_rerun && self.identical_parallel && self.identical_rollup
    }

    /// The `BENCH_fleet.json` document. Contains no wall-clock and no
    /// machine identifiers: regenerating on any machine from the same
    /// grid produces the same bytes.
    #[must_use]
    pub fn to_json(&self) -> String {
        fn delta_col(name: &str, vals: &[f64], out: &mut Vec<String>) {
            let items: Vec<String> = vals.iter().map(|v| format!("{v:e}")).collect();
            out.push(format!("    \"{name}\": [{}]", items.join(", ")));
        }
        let families: Vec<String> = self
            .families
            .iter()
            .map(|f| format!("\"{}\"", json_escape(f)))
            .collect();
        let mut deltas = Vec::new();
        delta_col("sse_rerun", &self.delta_sse_rerun, &mut deltas);
        delta_col("r2_rerun", &self.delta_r2_rerun, &mut deltas);
        delta_col("sse_parallel", &self.delta_sse_parallel, &mut deltas);
        delta_col("r2_parallel", &self.delta_r2_parallel, &mut deltas);
        let bands: Vec<String> = self
            .bands
            .iter()
            .map(|b| {
                format!(
                    "    {{\"scenario\": \"{}\", \"noise\": \"{}\", \"n\": {}, \"seeds\": {}, \
                     \"sse_mean\": {:e}, \"sse_min\": {:e}, \"sse_max\": {:e}, \
                     \"winner_unanimous\": {}}}",
                    json_escape(&b.scenario),
                    json_escape(&b.noise),
                    b.n,
                    b.seeds,
                    b.sse_mean,
                    b.sse_min,
                    b.sse_max,
                    b.winner_unanimous
                )
            })
            .collect();
        format!(
            "{{\n  \"benchmark\": \"fleet\",\n  \"cells\": {},\n  \"families\": [{}],\n  \
             \"runs\": {},\n  \"identical_rerun\": {},\n  \"identical_parallel\": {},\n  \
             \"identical_rollup\": {},\n  \"store_digest\": \"{:016x}\",\n  \
             \"max_delta\": {{\"sse_rerun\": {:e}, \"r2_rerun\": {:e}, \"sse_parallel\": {:e}, \
             \"r2_parallel\": {:e}}},\n  \"median_evals_per_fit\": {},\n  \"columns\": {},\n  \
             \"deltas\": {{\n{}\n  }},\n  \"variance_bands\": [\n{}\n  ],\n  \
             \"rollup\": {},\n  \"total\": {}\n}}\n",
            self.store.len(),
            families.join(", "),
            self.runs,
            self.identical_rerun,
            self.identical_parallel,
            self.identical_rollup,
            self.store.digest(),
            self.max_delta.sse_rerun,
            self.max_delta.r2_rerun,
            self.max_delta.sse_parallel,
            self.max_delta.r2_parallel,
            self.median_evals_per_fit,
            self.store.columns_json(),
            deltas.join(",\n"),
            bands.join(",\n"),
            self.rollup.to_json(),
            self.total.to_json(),
        )
    }
}

/// Per-cell |a − b| on bit-stored values; failed or quarantined cells
/// (sentinel bits on either side) count as zero delta — the winner
/// column already exposes them.
fn bit_deltas(a: &[u64], b: &[u64]) -> Vec<f64> {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            if x >= QUARANTINED_BITS || y >= QUARANTINED_BITS {
                0.0
            } else {
                (f64::from_bits(x) - f64::from_bits(y)).abs()
            }
        })
        .collect()
}

fn max_of(vals: &[f64]) -> f64 {
    vals.iter().copied().fold(0.0, f64::max)
}

/// Groups the store's cells by (scenario, noise, n) in first-seen order
/// and summarizes the winning SSE across the seed axis.
#[must_use]
pub fn variance_bands(store: &FleetStore) -> Vec<VarianceBand> {
    let mut order: Vec<(String, String, usize)> = Vec::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for i in 0..store.len() {
        let key = (
            store.scenario[i].clone(),
            store.noise[i].clone(),
            store.n[i],
        );
        match order.iter().position(|k| *k == key) {
            Some(g) => groups[g].push(i),
            None => {
                order.push(key);
                groups.push(vec![i]);
            }
        }
    }
    order
        .into_iter()
        .zip(groups)
        .filter_map(|((scenario, noise, n), members)| {
            let sses: Vec<f64> = members
                .iter()
                .filter(|&&i| store.sse_bits[i] < QUARANTINED_BITS)
                .map(|&i| f64::from_bits(store.sse_bits[i]))
                .collect();
            if sses.is_empty() {
                return None;
            }
            let winner_unanimous = members
                .iter()
                .all(|&i| store.winner[i] == store.winner[members[0]]);
            Some(VarianceBand {
                scenario,
                noise,
                n,
                seeds: members.len(),
                sse_mean: sses.iter().sum::<f64>() / sses.len() as f64,
                sse_min: sses.iter().copied().fold(f64::INFINITY, f64::min),
                sse_max: sses.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                winner_unanimous,
            })
        })
        .collect()
}

/// The repeatability evaluator: runs the fleet twice serially and once
/// with `Fixed(2)` workers, gates on byte-identical stores and roll-ups,
/// and assembles the [`FleetReport`].
///
/// # Panics
///
/// Panics when a grid cell fails to generate or `families` is empty (see
/// [`run_fleet`]).
#[must_use]
pub fn evaluate_fleet(grid: &ScenarioGrid, families: &[&dyn ModelFamily]) -> FleetReport {
    let run1 = run_fleet(grid, families, Parallelism::Serial);
    let run2 = run_fleet(grid, families, Parallelism::Serial);
    let run3 = run_fleet(grid, families, Parallelism::Fixed(2));

    let bytes1 = run1.store.columns_json();
    let identical_rerun = bytes1 == run2.store.columns_json();
    let identical_parallel = bytes1 == run3.store.columns_json();
    let rollup1 = run1.report.to_json();
    let identical_rollup = rollup1 == run2.report.to_json() && rollup1 == run3.report.to_json();

    let delta_sse_rerun = bit_deltas(&run1.store.sse_bits, &run2.store.sse_bits);
    let delta_r2_rerun = bit_deltas(&run1.store.r2_bits, &run2.store.r2_bits);
    let delta_sse_parallel = bit_deltas(&run1.store.sse_bits, &run3.store.sse_bits);
    let delta_r2_parallel = bit_deltas(&run1.store.r2_bits, &run3.store.r2_bits);
    let max_delta = MaxDelta {
        sse_rerun: max_of(&delta_sse_rerun),
        r2_rerun: max_of(&delta_r2_rerun),
        sse_parallel: max_of(&delta_sse_parallel),
        r2_parallel: max_of(&delta_r2_parallel),
    };

    let bands = variance_bands(&run1.store);
    let median_evals_per_fit = median_u64(&run1.evals_per_fit).unwrap_or(0);
    let mut total = run1.report.clone();
    total.merge(&run2.report);
    total.merge(&run3.report);

    FleetReport {
        families: families.iter().map(|f| f.name().to_string()).collect(),
        store: run1.store,
        delta_sse_rerun,
        delta_r2_rerun,
        delta_sse_parallel,
        delta_r2_parallel,
        identical_rerun,
        identical_parallel,
        identical_rollup,
        max_delta,
        bands,
        rollup: run1.report,
        total,
        runs: 3,
        median_evals_per_fit,
        wall_ns: vec![run1.wall_ns, run2.wall_ns, run3.wall_ns],
    }
}

/// The CI smoke grid: 4 scenarios × 2 noises × 2 lengths × 4 seeds =
/// 64 cells — the floor the `--fleet-smoke` gate must cover.
#[must_use]
pub fn smoke_grid() -> ScenarioGrid {
    ScenarioGrid {
        scenarios: vec![
            GridScenario::Shape(ShapeKind::V),
            GridScenario::Shape(ShapeKind::W),
            GridScenario::StepOutage,
            GridScenario::PoissonOutages,
        ],
        noises: vec![NoiseLevel::Clean, NoiseLevel::Gaussian { sd: 0.001 }],
        lengths: vec![32, 48],
        seeds: vec![42, 43, 44, 45],
    }
}

/// The full sweep grid: every grid scenario × 3 noises × 3 lengths ×
/// 4 seeds = 360 cells.
#[must_use]
pub fn full_grid() -> ScenarioGrid {
    ScenarioGrid {
        scenarios: GridScenario::ALL.to_vec(),
        noises: vec![
            NoiseLevel::Clean,
            NoiseLevel::Gaussian { sd: 0.001 },
            NoiseLevel::Uniform { amplitude: 0.002 },
        ],
        lengths: vec![32, 48, 96],
        seeds: vec![42, 43, 44, 45],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::bathtub::{CompetingRisksFamily, QuadraticFamily};

    /// Tiny grid so the repeatability loop stays fast in debug builds.
    fn tiny_grid() -> ScenarioGrid {
        ScenarioGrid {
            scenarios: vec![GridScenario::Shape(ShapeKind::V), GridScenario::StepOutage],
            noises: vec![NoiseLevel::Gaussian { sd: 0.001 }],
            lengths: vec![32],
            seeds: vec![42, 43],
        }
    }

    fn families() -> Vec<&'static dyn ModelFamily> {
        vec![&QuadraticFamily, &CompetingRisksFamily]
    }

    #[test]
    fn two_fleet_runs_are_bit_identical() {
        let grid = tiny_grid();
        let a = run_fleet(&grid, &families(), Parallelism::Serial);
        let b = run_fleet(&grid, &families(), Parallelism::Serial);
        assert_eq!(a.store, b.store);
        assert_eq!(a.store.columns_json(), b.store.columns_json());
        assert_eq!(a.store.digest(), b.store.digest());
        assert_eq!(a.report.to_json(), b.report.to_json());
        assert_eq!(a.evals_per_fit, b.evals_per_fit);
    }

    #[test]
    fn serial_and_fixed2_fleets_match_byte_for_byte() {
        let grid = tiny_grid();
        let serial = run_fleet(&grid, &families(), Parallelism::Serial);
        let fixed2 = run_fleet(&grid, &families(), Parallelism::Fixed(2));
        assert_eq!(serial.store.columns_json(), fixed2.store.columns_json());
        assert_eq!(serial.report.to_json(), fixed2.report.to_json());
    }

    #[test]
    fn evaluator_passes_gates_and_zeroes_deltas_on_a_deterministic_fleet() {
        let grid = tiny_grid();
        let report = evaluate_fleet(&grid, &families());
        assert!(report.gates_pass());
        assert!(report.identical_rerun);
        assert!(report.identical_parallel);
        assert!(report.identical_rollup);
        assert_eq!(report.store.len(), grid.len());
        assert_eq!(report.max_delta.sse_rerun, 0.0);
        assert_eq!(report.max_delta.sse_parallel, 0.0);
        assert!(report.delta_sse_rerun.iter().all(|&d| d == 0.0));
        assert_eq!(report.runs, 3);
        // The merged total counts three runs' worth of work.
        let per_run: u64 = report.rollup.counters.iter().map(|(_, v)| *v).sum();
        let total: u64 = report.total.counters.iter().map(|(_, v)| *v).sum();
        assert_eq!(total, 3 * per_run);
        // Variance bands: one per (scenario, noise, n) group, spanning
        // both seeds, with min ≤ mean ≤ max.
        assert_eq!(report.bands.len(), 2);
        for band in &report.bands {
            assert_eq!(band.seeds, 2);
            assert!(band.sse_min <= band.sse_mean && band.sse_mean <= band.sse_max);
        }
    }

    #[test]
    fn report_json_is_structurally_sound_and_wall_clock_free() {
        let grid = tiny_grid();
        let report = evaluate_fleet(&grid, &families());
        let json = report.to_json();
        for needle in [
            "\"benchmark\": \"fleet\"",
            "\"cells\": 4",
            "\"identical_rerun\": true",
            "\"identical_parallel\": true",
            "\"identical_rollup\": true",
            "\"store_digest\"",
            "\"max_delta\"",
            "\"scenario\": [",
            "\"sse_bits\": [",
            "\"variance_bands\"",
            "\"rollup\"",
        ] {
            assert!(json.contains(needle), "missing {needle}");
        }
        assert!(
            !json.contains("wall"),
            "baseline must not record wall-clock"
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // And the document is reproducible byte for byte.
        assert_eq!(json, evaluate_fleet(&grid, &families()).to_json());
    }

    #[test]
    fn store_records_failed_cells_with_sentinel_bits() {
        let grid = tiny_grid();
        let cell = grid.cell(0);
        let mut store = FleetStore::with_capacity(1);
        store.push(&cell, None, CellWork::default());
        assert_eq!(store.winner[0], "(failed)");
        assert_eq!(store.sse_bits[0], FAILED_BITS);
        assert_eq!(store.ranked[0], 0);
        assert_eq!(store.evals[0], 0);
        // Failed cells contribute zero delta and drop out of bands.
        assert_eq!(bit_deltas(&store.sse_bits, &store.sse_bits), vec![0.0]);
        assert!(variance_bands(&store).is_empty());
    }

    #[test]
    fn work_columns_agree_with_the_rollup() {
        let grid = tiny_grid();
        let run = run_fleet(&grid, &families(), Parallelism::Serial);
        // One span-tree cell per grid cell, and the per-cell work columns
        // sum to the per-family attribution of the aggregated report.
        assert_eq!(run.store.evals.len(), grid.len());
        let column_total: u64 = run.store.evals.iter().sum();
        let family_total: u64 = run.report.families.iter().map(|f| f.evaluations).sum();
        assert_eq!(column_total, family_total);
        assert!(column_total > 0, "fleet did no work?");
        let retries_total: u64 = run.store.retries.iter().sum();
        let family_retries: u64 = run.report.families.iter().map(|f| f.retries).sum();
        assert_eq!(retries_total, family_retries);
        // The columns serialize into the gated byte string.
        assert!(run.store.columns_json().contains("\"evals\": ["));
        assert!(run.store.columns_json().contains("\"retries\": ["));
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
