//! Chaos-smoke evaluator behind `bench fleet --chaos-smoke` (DESIGN.md
//! §14): the 64-cell CI grid run under a **fixed** [`ChaosPlan`] with the
//! circuit breaker armed, gated on the supervisor's whole contract at
//! once —
//!
//! 1. **no fleet abort**: every cell returns an outcome; chaos-injected
//!    panics, deadline blowouts and retry exhaustion never escape the
//!    supervisor;
//! 2. **well-formed survivors**: every non-quarantined cell carries a
//!    finite winning fit;
//! 3. **bit-identical chaos**: the store *and* the full event JSONL are
//!    byte-identical across two serial runs and a `Fixed(2)` run — fault
//!    injection is part of the determinism contract, not an exception to
//!    it;
//! 4. **bounded retries**: the `retries` counter never exceeds
//!    `(max_attempts − 1) × jobs`;
//! 5. **accounted injection**: the `chaos_injected` counter equals the
//!    number of `chaos_injected` events, and the plan actually fired
//!    (injections, breaker trips and quarantines are all non-zero — a
//!    chaos smoke that injects nothing proves nothing).
//!
//! The verdict is written to `BENCH_chaos.json` with no wall-clock and no
//! machine identifiers: regenerating it anywhere yields the same bytes.

use crate::fleet::{cell_work, FleetStore, QUARANTINED_BITS};
use resilience_core::chaos::ChaosPlan;
use resilience_core::fit::FitConfig;
use resilience_core::model::ModelFamily;
use resilience_core::runtime::{
    rank_fleet_supervised, BreakerPolicy, CellOutcome, Control, ExecPolicy, RetryPolicy,
};
use resilience_data::scenario::ScenarioGrid;
use resilience_data::PerformanceSeries;
use resilience_obs::{CounterId, RecordingObserver, RunReport, SpanTree};
use resilience_optim::Parallelism;
use std::sync::Arc;

/// The fixed chaos plan of the CI smoke. Rates are tuned so the 64-cell
/// grid exercises every supervisor path — forced panics, deadline
/// blowouts, retry exhaustion, observer loss, transient retry recovery,
/// breaker trips, and at least one quarantined cell — while most cells
/// still rank. Changing any constant changes `BENCH_chaos.json`
/// deliberately: the plan is part of the baseline.
#[must_use]
pub fn chaos_plan() -> ChaosPlan {
    ChaosPlan {
        seed: 0x0C4A_0511,
        panic_per_mille: 70,
        deadline_per_mille: 60,
        exhaustion_per_mille: 50,
        observer_loss_per_mille: 100,
        transient_per_mille: 150,
    }
}

/// The execution policy of the chaos smoke: a short retry schedule (so
/// the bounded-retry gate is non-trivial), a tight breaker (so trips
/// actually happen in 64 cells), and **no** wall-clock family budget —
/// chaos runs must stay pure functions of the plan.
#[must_use]
pub fn chaos_policy() -> ExecPolicy {
    ExecPolicy {
        family_budget: None,
        retry: Some(RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        }),
        breaker: Some(BreakerPolicy {
            threshold: 2,
            cooldown: 2,
            wave: 8,
        }),
        chaos: Some(chaos_plan()),
    }
}

/// One chaos fleet pass: the columnar store, the raw event log serialized
/// as JSONL (the second repeatability artifact), and the roll-up.
#[derive(Debug)]
pub struct ChaosRun {
    /// Per-cell results; quarantined cells sit in the sentinel column.
    pub store: FleetStore,
    /// Every event of the pass, one JSON object per line, in replay
    /// order. Byte-compared across reruns by the evaluator.
    pub events_jsonl: String,
    /// Aggregated counters/histograms (deterministic, no wall-clock).
    pub report: RunReport,
    /// Number of cells the supervisor quarantined.
    pub quarantined_cells: usize,
    /// Whether any cell came back [`CellOutcome::Stopped`] — a fleet
    /// abort, which the no-abort gate forbids.
    pub aborted: bool,
}

/// Runs one chaos fleet pass over `grid` under [`chaos_policy`].
///
/// # Panics
///
/// Panics when a grid cell's spec fails to generate (grid specs are valid
/// by construction) or when `families` is empty.
#[must_use]
pub fn run_fleet_chaos(
    grid: &ScenarioGrid,
    families: &[&dyn ModelFamily],
    parallelism: Parallelism,
) -> ChaosRun {
    assert!(
        !families.is_empty(),
        "chaos fleet needs at least one family"
    );
    let cells: Vec<_> = grid.cells().collect();
    let series: Vec<PerformanceSeries> = cells
        .iter()
        .map(|c| {
            c.generate()
                .unwrap_or_else(|e| panic!("grid cell {}: {e}", c.series_name()))
        })
        .collect();
    let config = FitConfig {
        parallelism,
        ..FitConfig::default()
    };
    let rec = Arc::new(RecordingObserver::new());
    let outcomes = rank_fleet_supervised(
        families,
        &series,
        &config,
        &chaos_policy(),
        &Control::unbounded().observe(rec.clone()),
    );
    let events = rec.take();
    let mut events_jsonl = String::new();
    for event in &events {
        event.write_json(&mut events_jsonl);
        events_jsonl.push('\n');
    }
    let tree = SpanTree::build(&events);
    let report = RunReport::from_events(events);

    let mut store = FleetStore::with_capacity(cells.len());
    let mut quarantined_cells = 0usize;
    let mut aborted = false;
    for (i, (cell, outcome)) in cells.iter().zip(&outcomes).enumerate() {
        let work = cell_work(&tree, i);
        match outcome {
            CellOutcome::Ranked(ranking) => store.push(cell, Some(ranking), work),
            CellOutcome::Quarantined { failures } => {
                quarantined_cells += 1;
                store.push_quarantined(cell, failures.len() as u32, work);
            }
            CellOutcome::Stopped(_) => {
                aborted = true;
                store.push(cell, None, work);
            }
        }
    }
    ChaosRun {
        store,
        events_jsonl,
        report,
        quarantined_cells,
        aborted,
    }
}

/// The chaos-smoke verdict: gates plus the exercised-path counts that
/// make `BENCH_chaos.json` diffable.
#[derive(Debug)]
pub struct ChaosReport {
    /// Family names fitted in every cell.
    pub families: Vec<String>,
    /// The fixed plan the smoke ran under.
    pub plan: ChaosPlan,
    /// Canonical (first serial run) store.
    pub store: FleetStore,
    /// Gate: no cell aborted the fleet in any run.
    pub no_abort: bool,
    /// Gate: every non-quarantined cell has a finite winning fit.
    pub well_formed: bool,
    /// Gate: serial rerun store + JSONL byte-identical.
    pub identical_rerun: bool,
    /// Gate: `Fixed(2)` store + JSONL byte-identical to serial.
    pub identical_parallel: bool,
    /// Gate: `chaos_injected` counter == number of chaos events, and the
    /// plan actually fired (injections, trips, quarantines all > 0).
    pub chaos_accounted: bool,
    /// Gate: retries ≤ (max_attempts − 1) × jobs.
    pub retries_bounded: bool,
    /// `chaos_injected` total of the canonical run.
    pub chaos_injected: u64,
    /// `breaker_opened` total of the canonical run.
    pub breaker_opened: u64,
    /// `breaker_half_open` total of the canonical run.
    pub breaker_half_open: u64,
    /// `cell_quarantined` total of the canonical run.
    pub cells_quarantined: u64,
    /// `retries` total of the canonical run.
    pub retries: u64,
    /// The retry ceiling the bounded gate compared against.
    pub retry_ceiling: u64,
    /// Work roll-up of the canonical run.
    pub rollup: RunReport,
    /// Number of passes the evaluation ran.
    pub runs: usize,
}

fn counter(report: &RunReport, id: CounterId) -> u64 {
    report
        .counters
        .iter()
        .find(|(c, _)| *c == id)
        .map_or(0, |(_, v)| *v)
}

impl ChaosReport {
    /// Whether every chaos gate held.
    #[must_use]
    pub fn gates_pass(&self) -> bool {
        self.no_abort
            && self.well_formed
            && self.identical_rerun
            && self.identical_parallel
            && self.chaos_accounted
            && self.retries_bounded
    }

    /// The `BENCH_chaos.json` document: gates, exercised-path counts, the
    /// plan, and the canonical store. No wall-clock, no machine
    /// identifiers — a pure function of the grid and the plan.
    #[must_use]
    pub fn to_json(&self) -> String {
        let families: Vec<String> = self
            .families
            .iter()
            .map(|f| format!("\"{}\"", crate::harness::json_escape(f)))
            .collect();
        let p = &self.plan;
        format!(
            "{{\n  \"benchmark\": \"chaos-fleet\",\n  \"cells\": {},\n  \"families\": [{}],\n  \
             \"runs\": {},\n  \"no_abort\": {},\n  \"well_formed\": {},\n  \
             \"identical_rerun\": {},\n  \"identical_parallel\": {},\n  \
             \"chaos_accounted\": {},\n  \"retries_bounded\": {},\n  \
             \"plan\": {{\"seed\": {}, \"panic_per_mille\": {}, \"deadline_per_mille\": {}, \
             \"exhaustion_per_mille\": {}, \"observer_loss_per_mille\": {}, \
             \"transient_per_mille\": {}}},\n  \
             \"chaos_injected\": {},\n  \"breaker_opened\": {},\n  \"breaker_half_open\": {},\n  \
             \"cells_quarantined\": {},\n  \"retries\": {},\n  \"retry_ceiling\": {},\n  \
             \"store_digest\": \"{:016x}\",\n  \"columns\": {},\n  \"rollup\": {}\n}}\n",
            self.store.len(),
            families.join(", "),
            self.runs,
            self.no_abort,
            self.well_formed,
            self.identical_rerun,
            self.identical_parallel,
            self.chaos_accounted,
            self.retries_bounded,
            p.seed,
            p.panic_per_mille,
            p.deadline_per_mille,
            p.exhaustion_per_mille,
            p.observer_loss_per_mille,
            p.transient_per_mille,
            self.chaos_injected,
            self.breaker_opened,
            self.breaker_half_open,
            self.cells_quarantined,
            self.retries,
            self.retry_ceiling,
            self.store.digest(),
            self.store.columns_json(),
            self.rollup.to_json(),
        )
    }
}

/// The chaos-smoke evaluator: three passes (serial ×2, `Fixed(2)` ×1)
/// over `grid` under [`chaos_policy`], gated as documented on the module.
///
/// # Panics
///
/// Panics when a grid cell fails to generate or `families` is empty (see
/// [`run_fleet_chaos`]).
#[must_use]
pub fn evaluate_chaos_fleet(grid: &ScenarioGrid, families: &[&dyn ModelFamily]) -> ChaosReport {
    let run1 = run_fleet_chaos(grid, families, Parallelism::Serial);
    let run2 = run_fleet_chaos(grid, families, Parallelism::Serial);
    let run3 = run_fleet_chaos(grid, families, Parallelism::Fixed(2));

    let bytes1 = run1.store.columns_json();
    let identical_rerun =
        bytes1 == run2.store.columns_json() && run1.events_jsonl == run2.events_jsonl;
    let identical_parallel =
        bytes1 == run3.store.columns_json() && run1.events_jsonl == run3.events_jsonl;

    let no_abort = !run1.aborted && !run2.aborted && !run3.aborted;
    let well_formed = (0..run1.store.len()).all(|i| {
        let bits = run1.store.sse_bits[i];
        if bits >= QUARANTINED_BITS {
            // Quarantined cells are parked, not ranked; a `(failed)`
            // sentinel would mean a non-quarantine hard failure, which
            // the no-abort + supervisor contract does not produce here.
            run1.store.winner[i] == "(quarantined)"
        } else {
            f64::from_bits(bits).is_finite()
                && f64::from_bits(run1.store.r2_bits[i]).is_finite()
                && run1.store.ranked[i] > 0
        }
    });

    let chaos_injected = counter(&run1.report, CounterId::ChaosInjected);
    let injected_events = run1
        .events_jsonl
        .lines()
        .filter(|l| l.contains("\"ev\":\"chaos_injected\""))
        .count() as u64;
    let breaker_opened = counter(&run1.report, CounterId::BreakerOpened);
    let breaker_half_open = counter(&run1.report, CounterId::BreakerHalfOpen);
    let cells_quarantined = counter(&run1.report, CounterId::CellsQuarantined);
    let chaos_accounted = chaos_injected == injected_events
        && chaos_injected > 0
        && breaker_opened > 0
        && cells_quarantined == run1.quarantined_cells as u64
        && cells_quarantined > 0;

    let retries = counter(&run1.report, CounterId::Retries);
    let max_attempts = chaos_policy().retry.map_or(1, |r| r.max_attempts) as u64;
    let retry_ceiling = (max_attempts - 1) * (grid.len() * families.len()) as u64;
    let retries_bounded = retries <= retry_ceiling;

    ChaosReport {
        families: families.iter().map(|f| f.name().to_string()).collect(),
        plan: chaos_plan(),
        store: run1.store,
        no_abort,
        well_formed,
        identical_rerun,
        identical_parallel,
        chaos_accounted,
        retries_bounded,
        chaos_injected,
        breaker_opened,
        breaker_half_open,
        cells_quarantined,
        retries,
        retry_ceiling,
        rollup: run1.report,
        runs: 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::bathtub::{CompetingRisksFamily, QuadraticFamily};
    use resilience_data::scenario::{GridScenario, NoiseLevel, ShapeKind};

    /// Small grid so the three-pass evaluation stays fast in debug
    /// builds; rates are high enough that chaos still fires on 16 cells.
    fn tiny_grid() -> ScenarioGrid {
        ScenarioGrid {
            scenarios: vec![GridScenario::Shape(ShapeKind::V), GridScenario::StepOutage],
            noises: vec![NoiseLevel::Gaussian { sd: 0.001 }],
            lengths: vec![32],
            seeds: vec![42, 43, 44, 45, 46, 47, 48, 49],
        }
    }

    fn families() -> Vec<&'static dyn ModelFamily> {
        vec![&QuadraticFamily, &CompetingRisksFamily]
    }

    #[test]
    fn chaos_passes_are_bit_identical_across_reruns_and_threads() {
        let grid = tiny_grid();
        let a = run_fleet_chaos(&grid, &families(), Parallelism::Serial);
        let b = run_fleet_chaos(&grid, &families(), Parallelism::Serial);
        let c = run_fleet_chaos(&grid, &families(), Parallelism::Fixed(2));
        assert_eq!(a.store.columns_json(), b.store.columns_json());
        assert_eq!(a.store.columns_json(), c.store.columns_json());
        assert_eq!(a.events_jsonl, b.events_jsonl);
        assert_eq!(a.events_jsonl, c.events_jsonl);
        assert!(!a.aborted);
        // The plan fired: chaos events exist in the log.
        assert!(a.events_jsonl.contains("chaos_injected"));
    }

    #[test]
    fn quarantined_cells_land_in_the_sentinel_column() {
        let grid = tiny_grid();
        let run = run_fleet_chaos(&grid, &families(), Parallelism::Serial);
        let from_store = run.store.quarantined.iter().filter(|&&q| q > 0).count();
        assert_eq!(from_store, run.quarantined_cells);
        for i in 0..run.store.len() {
            if run.store.quarantined[i] > 0 {
                assert_eq!(run.store.winner[i], "(quarantined)");
                assert_eq!(run.store.sse_bits[i], QUARANTINED_BITS);
            }
        }
    }

    #[test]
    fn report_json_is_wall_clock_free_and_reproducible() {
        let grid = tiny_grid();
        let report = evaluate_chaos_fleet(&grid, &families());
        assert!(report.no_abort);
        assert!(report.well_formed);
        assert!(report.identical_rerun);
        assert!(report.identical_parallel);
        assert!(report.retries_bounded);
        let json = report.to_json();
        for needle in [
            "\"benchmark\": \"chaos-fleet\"",
            "\"plan\"",
            "\"chaos_injected\"",
            "\"quarantined\": [",
            "\"rollup\"",
        ] {
            assert!(json.contains(needle), "missing {needle}");
        }
        assert!(
            !json.contains("wall"),
            "baseline must not record wall-clock"
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json, evaluate_chaos_fleet(&grid, &families()).to_json());
    }
}
