//! Observability smoke evaluator (`bench fleet --obs-smoke`):
//! the work-budget regression gate behind `BENCH_obs.json`.
//!
//! Runs the CI fleet three times — twice serial, once with `Fixed(2)`
//! workers — and gates on the *observability plane itself* being
//! deterministic, not just the fit results:
//!
//! 1. **identical_log** — the three JSONL event logs are byte-identical;
//! 2. **identical_tree** — the [`SpanTree`] renders are byte-identical;
//! 3. **identical_metrics** — the Prometheus-style expositions are
//!    byte-identical;
//! 4. **identical_store** — the columnar stores (now carrying the
//!    span-tree work columns) are byte-identical;
//! 5. **cells_covered** — the span tree reconstructs exactly one cell
//!    per grid cell, with zero unattributed evaluations;
//! 6. **work_attributed** — the per-cell work columns sum to the
//!    roll-up's per-family evaluation totals;
//! 7. **within_budget** — each family's evaluation total stays under its
//!    committed ceiling ([`EVAL_CEILINGS`]), so an optimizer regression
//!    that silently doubles the work budget fails CI.
//!
//! The JSON baseline is a pure function of the grid: counter totals,
//! histogram bucket vectors and percentiles, per-family work against
//! ceilings, and the top-K hottest cells. No wall-clock, no machine
//! identifiers — CI regenerates it and `git diff` stays clean.

use crate::fleet::{run_fleet, FleetRun};
use crate::harness::json_escape;
use resilience_core::model::ModelFamily;
use resilience_data::scenario::ScenarioGrid;
use resilience_obs::{Histogram, HistogramId, MetricsSnapshot, SpanTree, WorkMetric};
use resilience_optim::Parallelism;

/// Committed per-family evaluation ceilings for the 64-cell smoke grid
/// (`smoke_grid()` × the two bathtub families). Calibrated at roughly
/// 1.5× the measured totals of the §11 speed layer, so tolerance tweaks
/// pass but a regression to the pre-§11 exhaustive-simplex work profile
/// (several times the budget) fails.
pub const EVAL_CEILINGS: &[(&str, u64)] = &[("Quadratic", 85_000), ("Competing Risks", 245_000)];

/// Ceiling applied to a family with no [`EVAL_CEILINGS`] entry: generous
/// enough for any single family on the smoke grid, tight enough that a
/// runaway solver loop still trips the gate.
pub const DEFAULT_EVAL_CEILING: u64 = 300_000;

/// The evaluation ceiling for `family` ([`EVAL_CEILINGS`] lookup with the
/// [`DEFAULT_EVAL_CEILING`] fallback).
#[must_use]
pub fn eval_ceiling(family: &str) -> u64 {
    EVAL_CEILINGS
        .iter()
        .find(|(name, _)| *name == family)
        .map_or(DEFAULT_EVAL_CEILING, |(_, c)| *c)
}

/// One family's measured work against its committed ceiling.
#[derive(Debug, Clone)]
pub struct FamilyWork {
    /// Family name.
    pub family: String,
    /// Objective evaluations the canonical run attributed to the family.
    pub evaluations: u64,
    /// Committed ceiling ([`eval_ceiling`]).
    pub ceiling: u64,
}

/// Byte artifacts of the evaluation — the logs and renders the CI step
/// writes to disk so `obsctl` can be exercised against real output.
#[derive(Debug)]
pub struct ObsSmokeArtifacts {
    /// Canonical (first serial) run's JSONL event log.
    pub serial_jsonl: String,
    /// Second serial run's JSONL event log.
    pub rerun_jsonl: String,
    /// `Fixed(2)` run's JSONL event log.
    pub fixed2_jsonl: String,
    /// Canonical run's metrics exposition ([`MetricsSnapshot::render`]).
    pub metrics_text: String,
    /// Canonical run's span-tree render (all cells, full depth).
    pub tree_text: String,
}

/// The observability gate evaluation behind `BENCH_obs.json`.
#[derive(Debug)]
pub struct ObsSmokeReport {
    /// Grid cells evaluated.
    pub cells: usize,
    /// Family names fitted in every cell.
    pub families: Vec<String>,
    /// Fleet passes run (always 3: serial ×2 + `Fixed(2)`).
    pub runs: usize,
    /// Events in the canonical run's log.
    pub events: u64,
    /// Gate 1: the three JSONL logs are byte-identical.
    pub identical_log: bool,
    /// Gate 2: the three span-tree renders are byte-identical.
    pub identical_tree: bool,
    /// Gate 3: the three metrics expositions are byte-identical.
    pub identical_metrics: bool,
    /// Gate 4: the three columnar stores are byte-identical.
    pub identical_store: bool,
    /// Gate 5: one span-tree cell per grid cell, zero unattributed work.
    pub cells_covered: bool,
    /// Gate 6: work columns sum to the roll-up's family totals.
    pub work_attributed: bool,
    /// Gate 7: every family under its evaluation ceiling.
    pub within_budget: bool,
    /// Counter totals of the canonical run, in [`resilience_obs::CounterId`] order.
    pub counters: Vec<(String, u64)>,
    /// Histograms of the canonical run, in [`HistogramId`] order.
    pub histograms: Vec<(String, Histogram)>,
    /// Per-family work against ceilings.
    pub family_work: Vec<FamilyWork>,
    /// Top-K hottest cells by evaluations `(cell, evaluations)`.
    pub hottest_cells: Vec<(u32, u64)>,
    /// Hottest families by evaluations `(family, evaluations)`.
    pub hottest_families: Vec<(String, u64)>,
    /// Span-tree cells reconstructed from the canonical log.
    pub tree_cells: usize,
    /// Evaluations the span tree could not attribute to any cell.
    pub unattributed_evals: u64,
}

impl ObsSmokeReport {
    /// Whether every observability gate held.
    #[must_use]
    pub fn gates_pass(&self) -> bool {
        self.identical_log
            && self.identical_tree
            && self.identical_metrics
            && self.identical_store
            && self.cells_covered
            && self.work_attributed
            && self.within_budget
    }

    /// The `BENCH_obs.json` document — a pure function of the grid, so
    /// CI regenerates it and `git diff` stays clean.
    #[must_use]
    pub fn to_json(&self) -> String {
        let families: Vec<String> = self
            .families
            .iter()
            .map(|f| format!("\"{}\"", json_escape(f)))
            .collect();
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(name, v)| format!("    \"{}\": {v}", json_escape(name)))
            .collect();
        let histograms: Vec<String> = self
            .histograms
            .iter()
            .map(|(name, h)| {
                let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
                format!(
                    "    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                     \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [{}]}}",
                    json_escape(name),
                    h.count,
                    h.sum,
                    h.min,
                    h.max,
                    h.p50().unwrap_or(0),
                    h.p90().unwrap_or(0),
                    h.p99().unwrap_or(0),
                    buckets.join(", ")
                )
            })
            .collect();
        let work: Vec<String> = self
            .family_work
            .iter()
            .map(|w| {
                format!(
                    "    {{\"family\": \"{}\", \"evaluations\": {}, \"ceiling\": {}}}",
                    json_escape(&w.family),
                    w.evaluations,
                    w.ceiling
                )
            })
            .collect();
        let hottest_cells: Vec<String> = self
            .hottest_cells
            .iter()
            .map(|(cell, evals)| format!("    {{\"cell\": {cell}, \"evals\": {evals}}}"))
            .collect();
        let hottest_families: Vec<String> = self
            .hottest_families
            .iter()
            .map(|(family, evals)| {
                format!(
                    "    {{\"family\": \"{}\", \"evals\": {evals}}}",
                    json_escape(family)
                )
            })
            .collect();
        format!(
            "{{\n  \"benchmark\": \"obs\",\n  \"cells\": {},\n  \"families\": [{}],\n  \
             \"runs\": {},\n  \"events\": {},\n  \"gates\": {{\"identical_log\": {}, \
             \"identical_tree\": {}, \"identical_metrics\": {}, \"identical_store\": {}, \
             \"cells_covered\": {}, \"work_attributed\": {}, \"within_budget\": {}}},\n  \
             \"tree_cells\": {},\n  \"unattributed_evals\": {},\n  \"counters\": {{\n{}\n  }},\n  \
             \"histograms\": {{\n{}\n  }},\n  \"family_work\": [\n{}\n  ],\n  \
             \"hottest_cells\": [\n{}\n  ],\n  \"hottest_families\": [\n{}\n  ]\n}}\n",
            self.cells,
            families.join(", "),
            self.runs,
            self.events,
            self.identical_log,
            self.identical_tree,
            self.identical_metrics,
            self.identical_store,
            self.cells_covered,
            self.work_attributed,
            self.within_budget,
            self.tree_cells,
            self.unattributed_evals,
            counters.join(",\n"),
            histograms.join(",\n"),
            work.join(",\n"),
            hottest_cells.join(",\n"),
            hottest_families.join(",\n"),
        )
    }
}

/// How many hottest cells the baseline records.
const TOP_K: usize = 5;

/// Runs the observability gate evaluation: three fleet passes, the seven
/// gates, and the baseline aggregates (see the module docs).
///
/// # Panics
///
/// Panics when a grid cell fails to generate or `families` is empty (see
/// [`run_fleet`]).
#[must_use]
pub fn evaluate_obs_smoke(
    grid: &ScenarioGrid,
    families: &[&dyn ModelFamily],
) -> (ObsSmokeReport, ObsSmokeArtifacts) {
    let run1 = run_fleet(grid, families, Parallelism::Serial);
    let run2 = run_fleet(grid, families, Parallelism::Serial);
    let run3 = run_fleet(grid, families, Parallelism::Fixed(2));

    let log1 = run1.events_jsonl();
    let log2 = run2.events_jsonl();
    let log3 = run3.events_jsonl();
    let identical_log = log1 == log2 && log1 == log3;

    let tree = SpanTree::build(&run1.events);
    let render = |run: &FleetRun| SpanTree::build(&run.events).render(usize::MAX, 4);
    let tree_text = tree.render(usize::MAX, 4);
    let identical_tree = tree_text == render(&run2) && tree_text == render(&run3);

    let metrics_text = MetricsSnapshot::from_report(&run1.report).render();
    let identical_metrics = metrics_text == MetricsSnapshot::from_report(&run2.report).render()
        && metrics_text == MetricsSnapshot::from_report(&run3.report).render();

    let store_bytes = run1.store.columns_json();
    let identical_store =
        store_bytes == run2.store.columns_json() && store_bytes == run3.store.columns_json();

    let cells_covered = tree.cells.len() == grid.len() && tree.unattributed_evaluations == 0;
    let column_total: u64 = run1.store.evals.iter().sum();
    let family_total: u64 = run1.report.families.iter().map(|f| f.evaluations).sum();
    let work_attributed = column_total == family_total && column_total > 0;

    let family_work: Vec<FamilyWork> = run1
        .report
        .families
        .iter()
        .map(|f| FamilyWork {
            family: f.name.to_string(),
            evaluations: f.evaluations,
            ceiling: eval_ceiling(f.name),
        })
        .collect();
    let within_budget = family_work.iter().all(|w| w.evaluations <= w.ceiling);

    let report = ObsSmokeReport {
        cells: grid.len(),
        families: families.iter().map(|f| f.name().to_string()).collect(),
        runs: 3,
        events: tree.events,
        identical_log,
        identical_tree,
        identical_metrics,
        identical_store,
        cells_covered,
        work_attributed,
        within_budget,
        counters: run1
            .report
            .counters
            .iter()
            .map(|(id, v)| (id.as_str().to_string(), *v))
            .collect(),
        histograms: HistogramId::ALL
            .iter()
            .map(|id| {
                let h = run1
                    .report
                    .histograms
                    .iter()
                    .find(|(hid, _)| hid == id)
                    .map_or_else(Histogram::default, |(_, h)| h.clone());
                (id.as_str().to_string(), h)
            })
            .collect(),
        family_work,
        hottest_cells: tree.hottest_cells(TOP_K, WorkMetric::Evaluations),
        hottest_families: tree
            .hottest_families(TOP_K, WorkMetric::Evaluations)
            .into_iter()
            .map(|(name, evals)| (name.to_string(), evals))
            .collect(),
        tree_cells: tree.cells.len(),
        unattributed_evals: tree.unattributed_evaluations,
    };
    let artifacts = ObsSmokeArtifacts {
        serial_jsonl: log1,
        rerun_jsonl: log2,
        fixed2_jsonl: log3,
        metrics_text,
        tree_text,
    };
    (report, artifacts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::bathtub::{CompetingRisksFamily, QuadraticFamily};
    use resilience_data::scenario::{GridScenario, NoiseLevel, ShapeKind};

    fn tiny_grid() -> ScenarioGrid {
        ScenarioGrid {
            scenarios: vec![GridScenario::Shape(ShapeKind::V), GridScenario::StepOutage],
            noises: vec![NoiseLevel::Gaussian { sd: 0.001 }],
            lengths: vec![32],
            seeds: vec![42, 43],
        }
    }

    fn families() -> Vec<&'static dyn ModelFamily> {
        vec![&QuadraticFamily, &CompetingRisksFamily]
    }

    #[test]
    fn gates_hold_on_a_deterministic_fleet() {
        let grid = tiny_grid();
        let (report, artifacts) = evaluate_obs_smoke(&grid, &families());
        assert!(report.gates_pass(), "gates failed: {report:?}");
        assert_eq!(report.cells, grid.len());
        assert_eq!(report.tree_cells, grid.len());
        assert_eq!(report.unattributed_evals, 0);
        assert_eq!(report.runs, 3);
        assert_eq!(artifacts.serial_jsonl, artifacts.rerun_jsonl);
        assert_eq!(artifacts.serial_jsonl, artifacts.fixed2_jsonl);
        assert!(artifacts.metrics_text.starts_with("# TYPE"));
        assert!(artifacts.tree_text.starts_with("fleet:"));
    }

    #[test]
    fn baseline_json_is_reproducible_and_wall_clock_free() {
        let grid = tiny_grid();
        let (report, _) = evaluate_obs_smoke(&grid, &families());
        let json = report.to_json();
        for needle in [
            "\"benchmark\": \"obs\"",
            "\"cells\": 4",
            "\"runs\": 3",
            "\"gates\": {\"identical_log\": true",
            "\"within_budget\": true",
            "\"counters\": {",
            "\"objective_evals\":",
            "\"histograms\": {",
            "\"evals_per_fit\":",
            "\"family_work\": [",
            "\"ceiling\":",
            "\"hottest_cells\": [",
            "\"hottest_families\": [",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        assert!(
            !json.contains("wall"),
            "baseline must not record wall-clock"
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let (again, _) = evaluate_obs_smoke(&grid, &families());
        assert_eq!(json, again.to_json());
    }

    #[test]
    fn hottest_cells_are_sorted_and_bounded() {
        let grid = tiny_grid();
        let (report, _) = evaluate_obs_smoke(&grid, &families());
        assert!(report.hottest_cells.len() <= TOP_K);
        assert!(!report.hottest_cells.is_empty());
        for pair in report.hottest_cells.windows(2) {
            assert!(pair[0].1 >= pair[1].1, "hottest cells not sorted: {pair:?}");
        }
        let total: u64 = report.family_work.iter().map(|w| w.evaluations).sum();
        let hottest_sum: u64 = report.hottest_cells.iter().map(|(_, e)| e).sum();
        assert!(hottest_sum <= total);
    }

    #[test]
    fn ceilings_cover_the_smoke_families() {
        assert_eq!(eval_ceiling("Quadratic"), 85_000);
        assert_eq!(eval_ceiling("Competing Risks"), 245_000);
        assert_eq!(eval_ceiling("Never Heard Of It"), DEFAULT_EVAL_CEILING);
    }
}
