//! Fleet repeatability contract, end to end (DESIGN.md §13): the same
//! grid must produce byte-identical results stores across reruns and
//! across worker counts, and the batch entry point must agree bit for bit
//! with standalone per-series ranking.
//!
//! The grids here are deliberately tiny — the contract is about identity,
//! not scale, and these run in debug builds under `cargo test`. The
//! 64-cell CI grid runs in release via `scripts/verify.sh`
//! (`bench fleet --fleet-smoke`).

use resilience_bench::fleet::{evaluate_fleet, run_fleet, smoke_grid, FleetStore};
use resilience_core::bathtub::{CompetingRisksFamily, QuadraticFamily};
use resilience_core::fit::FitConfig;
use resilience_core::model::ModelFamily;
use resilience_core::runtime::{rank_models_supervised, Control, ExecPolicy};
use resilience_data::scenario::{GridScenario, NoiseLevel, ScenarioGrid, ShapeKind};
use resilience_optim::Parallelism;

fn tiny_grid() -> ScenarioGrid {
    ScenarioGrid {
        scenarios: vec![
            GridScenario::Shape(ShapeKind::V),
            GridScenario::PoissonOutages,
        ],
        noises: vec![NoiseLevel::Gaussian { sd: 0.001 }],
        lengths: vec![32],
        seeds: vec![42, 43],
    }
}

fn families() -> Vec<&'static dyn ModelFamily> {
    vec![&QuadraticFamily, &CompetingRisksFamily]
}

#[test]
fn double_run_produces_byte_identical_stores_and_rollups() {
    let grid = tiny_grid();
    let a = run_fleet(&grid, &families(), Parallelism::Serial);
    let b = run_fleet(&grid, &families(), Parallelism::Serial);
    assert_eq!(
        a.store.columns_json().as_bytes(),
        b.store.columns_json().as_bytes()
    );
    assert_eq!(a.report.to_json().as_bytes(), b.report.to_json().as_bytes());
}

#[test]
fn serial_and_fixed2_stores_are_byte_identical() {
    let grid = tiny_grid();
    let serial = run_fleet(&grid, &families(), Parallelism::Serial);
    let fixed2 = run_fleet(&grid, &families(), Parallelism::Fixed(2));
    assert_eq!(
        serial.store.columns_json().as_bytes(),
        fixed2.store.columns_json().as_bytes()
    );
    assert_eq!(
        serial.report.to_json().as_bytes(),
        fixed2.report.to_json().as_bytes()
    );
    assert_eq!(serial.store.digest(), fixed2.store.digest());
}

#[test]
fn fleet_cells_match_standalone_supervised_ranking() {
    // The flattened series × family fan-out must not change any answer:
    // every cell's winner and SSE bits equal a standalone
    // rank_models_supervised call on the same generated series.
    let grid = tiny_grid();
    let fams = families();
    let fleet = run_fleet(&grid, &fams, Parallelism::Fixed(2));
    for cell in grid.cells() {
        let series = cell.generate().unwrap();
        let standalone = rank_models_supervised(
            &fams,
            &series,
            &FitConfig::default(),
            &ExecPolicy::default(),
            &Control::unbounded(),
        )
        .unwrap();
        let top = &standalone.rows[0];
        let i = cell.index;
        assert_eq!(fleet.store.winner[i], top.family_name, "cell {i}");
        assert_eq!(fleet.store.sse_bits[i], top.sse.to_bits(), "cell {i}");
        assert_eq!(fleet.store.r2_bits[i], top.r2_adj.to_bits(), "cell {i}");
        assert_eq!(fleet.store.ranked[i] as usize, standalone.rows.len());
    }
}

#[test]
fn evaluator_gates_hold_on_the_tiny_grid() {
    let report = evaluate_fleet(&tiny_grid(), &families());
    assert!(report.gates_pass());
    assert_eq!(report.max_delta.sse_rerun, 0.0);
    assert_eq!(report.max_delta.r2_rerun, 0.0);
    assert_eq!(report.max_delta.sse_parallel, 0.0);
    assert_eq!(report.max_delta.r2_parallel, 0.0);
    // The baseline document regenerates byte-identically.
    assert_eq!(
        report.to_json(),
        evaluate_fleet(&tiny_grid(), &families()).to_json()
    );
}

#[test]
fn smoke_grid_meets_the_ci_floor() {
    let grid = smoke_grid();
    assert!(grid.len() >= 64, "CI grid must cover at least 64 cells");
    // Every cell decodes and generates (the release-mode gate fits them
    // all; here we only prove the grid is well-formed in debug time).
    let names: std::collections::BTreeSet<String> = grid.cells().map(|c| c.series_name()).collect();
    assert_eq!(names.len(), grid.len(), "cell names must be unique");
    for cell in grid.cells() {
        let series = cell.generate().unwrap();
        assert_eq!(series.len(), cell.n);
    }
}

#[test]
fn store_columns_stay_aligned() {
    let grid = tiny_grid();
    let store: FleetStore = run_fleet(&grid, &families(), Parallelism::Serial).store;
    assert_eq!(store.len(), grid.len());
    for col_len in [
        store.scenario.len(),
        store.noise.len(),
        store.n.len(),
        store.seed.len(),
        store.winner.len(),
        store.sse_bits.len(),
        store.r2_bits.len(),
        store.ranked.len(),
        store.failed.len(),
    ] {
        assert_eq!(col_len, store.len());
    }
}
