//! End-to-end tests for the `obsctl` binary: each subcommand is run as a
//! real subprocess against synthetic JSONL logs, pinning the exit-code
//! contract (0 ok/identical, 1 diff found, 2 usage/IO/parse errors).

use std::path::PathBuf;
use std::process::{Command, Output};

/// A synthetic two-cell fleet log: each cell fits Quadratic then Glacial.
const LOG: &str = "\
{\"ev\":\"fit_started\",\"family\":\"Quadratic\",\"starts\":3}\n\
{\"ev\":\"counter\",\"id\":\"objective_evals\",\"n\":12}\n\
{\"ev\":\"fit_finished\",\"family\":\"Quadratic\",\"sse\":0.5,\"evals\":12,\"converged\":true}\n\
{\"ev\":\"hist\",\"id\":\"evals_per_fit\",\"value\":12}\n\
{\"ev\":\"fit_started\",\"family\":\"Glacial\",\"starts\":3}\n\
{\"ev\":\"counter\",\"id\":\"objective_evals\",\"n\":30}\n\
{\"ev\":\"fit_finished\",\"family\":\"Glacial\",\"sse\":1.5,\"evals\":30,\"converged\":false}\n\
{\"ev\":\"hist\",\"id\":\"evals_per_fit\",\"value\":30}\n\
{\"ev\":\"fit_started\",\"family\":\"Quadratic\",\"starts\":3}\n\
{\"ev\":\"counter\",\"id\":\"objective_evals\",\"n\":8}\n\
{\"ev\":\"fit_finished\",\"family\":\"Quadratic\",\"sse\":0.25,\"evals\":8,\"converged\":true}\n\
{\"ev\":\"hist\",\"id\":\"evals_per_fit\",\"value\":8}\n\
{\"ev\":\"fit_started\",\"family\":\"Glacial\",\"starts\":3}\n\
{\"ev\":\"counter\",\"id\":\"objective_evals\",\"n\":40}\n\
{\"ev\":\"fit_finished\",\"family\":\"Glacial\",\"sse\":2.5,\"evals\":40,\"converged\":false}\n\
{\"ev\":\"hist\",\"id\":\"evals_per_fit\",\"value\":40}\n";

/// `LOG` with one field changed (the second Glacial fit's eval count).
const LOG_DRIFTED: &str = "\
{\"ev\":\"fit_started\",\"family\":\"Quadratic\",\"starts\":3}\n\
{\"ev\":\"counter\",\"id\":\"objective_evals\",\"n\":12}\n\
{\"ev\":\"fit_finished\",\"family\":\"Quadratic\",\"sse\":0.5,\"evals\":12,\"converged\":true}\n\
{\"ev\":\"hist\",\"id\":\"evals_per_fit\",\"value\":12}\n\
{\"ev\":\"fit_started\",\"family\":\"Glacial\",\"starts\":3}\n\
{\"ev\":\"counter\",\"id\":\"objective_evals\",\"n\":30}\n\
{\"ev\":\"fit_finished\",\"family\":\"Glacial\",\"sse\":1.5,\"evals\":30,\"converged\":false}\n\
{\"ev\":\"hist\",\"id\":\"evals_per_fit\",\"value\":30}\n\
{\"ev\":\"fit_started\",\"family\":\"Quadratic\",\"starts\":3}\n\
{\"ev\":\"counter\",\"id\":\"objective_evals\",\"n\":8}\n\
{\"ev\":\"fit_finished\",\"family\":\"Quadratic\",\"sse\":0.25,\"evals\":8,\"converged\":true}\n\
{\"ev\":\"hist\",\"id\":\"evals_per_fit\",\"value\":8}\n\
{\"ev\":\"fit_started\",\"family\":\"Glacial\",\"starts\":3}\n\
{\"ev\":\"counter\",\"id\":\"objective_evals\",\"n\":44}\n\
{\"ev\":\"fit_finished\",\"family\":\"Glacial\",\"sse\":2.5,\"evals\":44,\"converged\":false}\n\
{\"ev\":\"hist\",\"id\":\"evals_per_fit\",\"value\":44}\n";

/// Writes `contents` to a unique file under the target temp dir and
/// returns its path.
fn fixture(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("obsctl-test-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("write fixture");
    path
}

fn obsctl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_obsctl"))
        .args(args)
        .output()
        .expect("run obsctl")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf8 stdout")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

#[test]
fn report_renders_the_family_table() {
    let log = fixture("report.jsonl", LOG);
    let out = obsctl(&["report", log.to_str().unwrap()]);
    assert_eq!(code(&out), 0);
    let text = stdout(&out);
    assert!(text.contains("Quadratic"), "missing family: {text}");
    assert!(text.contains("Glacial"), "missing family: {text}");
    let json = obsctl(&["report", log.to_str().unwrap(), "--json"]);
    assert_eq!(code(&json), 0);
    assert!(stdout(&json).contains("\"families\""));
}

#[test]
fn tree_reconstructs_cells_and_honors_depth_and_cells_flags() {
    let log = fixture("tree.jsonl", LOG);
    let out = obsctl(&["tree", log.to_str().unwrap()]);
    assert_eq!(code(&out), 0);
    let text = stdout(&out);
    assert!(
        text.starts_with("fleet: 2 cells, 4 fits, 90 evals"),
        "unexpected header: {text}"
    );
    assert!(text.contains("cell 0: 2 fits"));
    assert!(text.contains("  Quadratic: evals=12"));

    let shallow = stdout(&obsctl(&[
        "tree",
        log.to_str().unwrap(),
        "--cells",
        "1",
        "--depth",
        "1",
    ]));
    assert!(shallow.contains("cell 0:"));
    assert!(!shallow.contains("cell 1:"), "cells cap ignored: {shallow}");
    assert!(shallow.contains("(1 more cells)"));
    assert!(
        !shallow.contains("Quadratic:"),
        "depth cap ignored: {shallow}"
    );
}

#[test]
fn top_ranks_hottest_cells_and_families() {
    let log = fixture("top.jsonl", LOG);
    let out = obsctl(&["top", log.to_str().unwrap(), "--limit", "1"]);
    assert_eq!(code(&out), 0);
    let text = stdout(&out);
    // Cell 1 (8 + 40 evals) outworks cell 0 (12 + 30); Glacial (70)
    // outworks Quadratic (20).
    assert!(text.contains("cell 1"), "wrong hottest cell: {text}");
    assert!(!text.contains("cell 0"), "limit ignored: {text}");
    assert!(text.contains("Glacial"), "wrong hottest family: {text}");

    let by_retries = obsctl(&["top", log.to_str().unwrap(), "--by", "retries"]);
    assert_eq!(code(&by_retries), 0);
    assert!(stdout(&by_retries).contains("retries="));
}

#[test]
fn diff_of_identical_logs_is_empty_with_exit_zero() {
    let a = fixture("diff-a.jsonl", LOG);
    let b = fixture("diff-b.jsonl", LOG);
    let out = obsctl(&["diff", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(code(&out), 0);
    assert!(stdout(&out).is_empty(), "identical diff must print nothing");

    let report = obsctl(&["diff", a.to_str().unwrap(), b.to_str().unwrap(), "--report"]);
    assert_eq!(code(&report), 0);
    assert!(stdout(&report).is_empty());
}

#[test]
fn diff_of_drifted_logs_names_the_field_with_exit_one() {
    let a = fixture("drift-a.jsonl", LOG);
    let b = fixture("drift-b.jsonl", LOG_DRIFTED);
    let out = obsctl(&["diff", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(code(&out), 1);
    let text = stdout(&out);
    assert!(text.contains("line 14"), "wrong line: {text}");
    assert!(text.contains("n: 40 -> 44"), "field not localized: {text}");

    let report = obsctl(&["diff", a.to_str().unwrap(), b.to_str().unwrap(), "--report"]);
    assert_eq!(code(&report), 1);
    let text = stdout(&report);
    assert!(
        text.contains("family.Glacial.evaluations"),
        "report diff missing path: {text}"
    );
}

#[test]
fn export_emits_the_metrics_exposition() {
    let log = fixture("export.jsonl", LOG);
    let out = obsctl(&["export", log.to_str().unwrap()]);
    assert_eq!(code(&out), 0);
    let text = stdout(&out);
    assert!(text.contains("resilience_events_total 16"));
    assert!(text.contains("resilience_objective_evals_total 90"));
    assert!(text.contains("resilience_family_evaluations_total{family=\"Glacial\"} 70"));
    assert!(text.contains("# TYPE resilience_evals_per_fit histogram"));
    // Deterministic: a second export renders identical bytes.
    assert_eq!(text, stdout(&obsctl(&["export", log.to_str().unwrap()])));
}

#[test]
fn usage_and_io_errors_exit_two() {
    assert_eq!(code(&obsctl(&[])), 2);
    assert_eq!(code(&obsctl(&["bogus"])), 2);
    assert_eq!(code(&obsctl(&["tree"])), 2);
    assert_eq!(code(&obsctl(&["diff", "only-one.jsonl"])), 2);
    assert_eq!(code(&obsctl(&["report", "/nonexistent/run.jsonl"])), 2);
    let malformed = fixture("malformed.jsonl", "{\"ev\":\"not_a_real_event\"}\n");
    assert_eq!(code(&obsctl(&["tree", malformed.to_str().unwrap()])), 2);
    let bad_flag = obsctl(&["tree", "x.jsonl", "--cells", "many"]);
    assert_eq!(code(&bad_flag), 2);
}
