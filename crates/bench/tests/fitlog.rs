//! End-to-end tests for the `fitlog` inspector binary: failure modes must
//! exit non-zero with a diagnostic (never a panic), and the happy path
//! must replay a well-formed log into the report.
//!
//! Cargo exposes the built binary path through `CARGO_BIN_EXE_fitlog`, so
//! these run hermetically — no shell scripts, no PATH assumptions.

use std::process::{Command, Output};

fn fitlog(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fitlog"))
        .args(args)
        .output()
        .expect("spawn fitlog")
}

fn temp_log(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("fitlog_test_{}_{name}", std::process::id()));
    std::fs::write(&path, contents).expect("write temp log");
    path
}

const GOOD_LOG: &str = r#"{"ev":"fit_started","family":"Quadratic","starts":4}
{"ev":"hist","id":"evals_per_fit","value":120}
{"ev":"fit_finished","family":"Quadratic","sse":0.00125,"evals":120,"converged":true}
"#;

#[test]
fn missing_log_path_is_a_usage_error() {
    let out = fitlog(&[]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage: fitlog"), "stderr: {stderr}");
}

#[test]
fn nonexistent_file_exits_nonzero_with_the_path() {
    let out = fitlog(&["/nonexistent/fitlog/input.jsonl"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("/nonexistent/fitlog/input.jsonl"),
        "stderr must name the missing path: {stderr}"
    );
    assert!(stderr.starts_with("fitlog:"), "stderr: {stderr}");
}

#[test]
fn malformed_line_exits_nonzero_with_its_line_number() {
    let log = format!("{GOOD_LOG}this is not json\n");
    let path = temp_log("malformed", &log);
    let out = fitlog(&[path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("line 4"),
        "stderr must name the offending line: {stderr}"
    );
}

#[test]
fn overflowing_integer_field_is_a_parse_error_not_a_panic() {
    // Values ≥ 2^64 used to saturate through `as u64` and feed garbage
    // into the report; now the parse layer rejects them with a line
    // number.
    let log = r#"{"ev":"hist","id":"evals_per_fit","value":1e300}
"#;
    let path = temp_log("overflow", log);
    let out = fitlog(&[path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 1"), "stderr: {stderr}");
    assert!(
        !stderr.contains("panicked"),
        "must fail cleanly, not panic: {stderr}"
    );
}

#[test]
fn well_formed_log_replays_into_the_table_and_json_reports() {
    let path = temp_log("good", GOOD_LOG);
    let table = fitlog(&[path.to_str().unwrap()]);
    assert!(table.status.success());
    let stdout = String::from_utf8_lossy(&table.stdout);
    assert!(stdout.contains("Quadratic"), "stdout: {stdout}");

    let json = fitlog(&[path.to_str().unwrap(), "--json"]);
    std::fs::remove_file(&path).ok();
    assert!(json.status.success());
    let stdout = String::from_utf8_lossy(&json.stdout);
    assert!(
        stdout.contains("\"name\":\"Quadratic\""),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("\"counters\""), "stdout: {stdout}");
}

#[test]
fn unknown_flag_is_rejected() {
    let out = fitlog(&["--bogus"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag --bogus"), "stderr: {stderr}");
}
