//! Criterion benches for the interval-based resilience metrics layer
//! (paper Tables II and IV workload): actual (trapezoid over data) vs
//! predicted (closed-form bathtub areas vs quadrature mixture areas).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use resilience_core::bathtub::QuadraticModel;
use resilience_core::metrics::{
    actual_metric, predicted_metric, MetricContext, MetricKind,
};
use resilience_core::mixture::{ComponentKind, MixtureModel, Trend};
use resilience_core::model::ResilienceModel;
use resilience_data::recessions::Recession;
use std::hint::black_box;

fn context(nominal: f64) -> MetricContext {
    MetricContext {
        t_start: 42.0,
        t_end: 47.0,
        nominal,
        t_min: 11.0,
        t_full_start: 0.0,
        weight: 0.5,
    }
    .validated()
    .unwrap()
}

fn bench_actual_metrics(c: &mut Criterion) {
    let series = Recession::R1990_93.payroll_index();
    let ctx = context(series.value_at(42.0).unwrap());
    let mut group = c.benchmark_group("actual_metrics");
    for kind in MetricKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, &kind| b.iter(|| actual_metric(black_box(&series), kind, &ctx).unwrap()),
        );
    }
    group.finish();
}

fn bench_predicted_metrics(c: &mut Criterion) {
    let quadratic = QuadraticModel::new(1.0, -0.004, 0.0001).unwrap();
    let mixture = MixtureModel::new(
        ComponentKind::Weibull,
        vec![2.0, 15.0],
        ComponentKind::Exponential,
        vec![0.08],
        Trend::Logarithmic,
        0.30,
    )
    .unwrap();
    let ctx_q = context(quadratic.predict(42.0));
    let ctx_m = context(mixture.predict(42.0));
    let mut group = c.benchmark_group("predicted_metrics");
    // Closed-form area path (Eq. 3) vs quadrature path.
    group.bench_function("quadratic_closed_form_all8", |b| {
        b.iter(|| {
            MetricKind::ALL
                .iter()
                .map(|&k| predicted_metric(black_box(&quadratic), k, &ctx_q).unwrap())
                .sum::<f64>()
        })
    });
    group.bench_function("mixture_quadrature_all8", |b| {
        b.iter(|| {
            MetricKind::ALL
                .iter()
                .map(|&k| predicted_metric(black_box(&mixture), k, &ctx_m).unwrap())
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_actual_metrics, bench_predicted_metrics);
criterion_main!(benches);
