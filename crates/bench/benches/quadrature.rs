//! Criterion benches for the numerical substrate: quadrature rules, root
//! finding, and special functions — everything the metrics and quantile
//! paths lean on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use resilience_math::{quad, roots, special};
use std::hint::black_box;

/// The integrand shape the mixture metrics integrate: a dip-and-recover
/// curve built from exp/ln terms.
fn mixture_like(t: f64) -> f64 {
    (-(t / 14.0).powf(1.8)).exp() + 0.24 * (t.max(1.0)).ln() * (1.0 - (-0.07 * t).exp())
}

fn bench_quadrature(c: &mut Criterion) {
    let mut group = c.benchmark_group("quadrature");
    group.bench_function("trapezoid_1024", |b| {
        b.iter(|| quad::trapezoid(mixture_like, 0.0, black_box(47.0), 1024).unwrap())
    });
    group.bench_function("simpson_256", |b| {
        b.iter(|| quad::simpson(mixture_like, 0.0, black_box(47.0), 256).unwrap())
    });
    group.bench_function("adaptive_simpson_1e-10", |b| {
        b.iter(|| quad::adaptive_simpson(mixture_like, 0.0, black_box(47.0), 1e-10, 40).unwrap())
    });
    group.bench_function("gauss_legendre_20", |b| {
        b.iter(|| quad::gauss_legendre(mixture_like, 0.0, black_box(47.0), 20).unwrap())
    });
    group.bench_function("romberg_1e-10", |b| {
        b.iter(|| quad::romberg(mixture_like, 0.0, black_box(47.0), 1e-10, 22).unwrap())
    });
    group.finish();
}

fn bench_roots(c: &mut Criterion) {
    let mut group = c.benchmark_group("roots");
    let f = |t: f64| mixture_like(t) - 0.95;
    group.bench_function("bisection", |b| {
        b.iter(|| roots::bisection(f, black_box(0.0), 20.0, 1e-12, 200).unwrap())
    });
    group.bench_function("brent", |b| {
        b.iter(|| roots::brent(f, black_box(0.0), 20.0, 1e-12, 200).unwrap())
    });
    group.finish();
}

fn bench_special(c: &mut Criterion) {
    let mut group = c.benchmark_group("special_functions");
    for x in [0.5, 5.0, 50.0] {
        group.bench_with_input(BenchmarkId::new("ln_gamma", x), &x, |b, &x| {
            b.iter(|| special::ln_gamma(black_box(x)).unwrap())
        });
    }
    group.bench_function("erf", |b| b.iter(|| special::erf(black_box(1.2))));
    group.bench_function("inv_erf", |b| {
        b.iter(|| special::inv_erf(black_box(0.95)).unwrap())
    });
    group.bench_function("reg_gamma_p", |b| {
        b.iter(|| special::reg_gamma_p(black_box(2.5), black_box(3.0)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_quadrature, bench_roots, bench_special);
criterion_main!(benches);
