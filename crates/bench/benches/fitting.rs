//! Criterion benches for the least-squares fitting pipeline — the
//! computational core behind the paper's Tables I and III.
//!
//! Groups:
//! * `bathtub_fit` — quadratic and competing-risks fits per recession
//!   class (Table I workload).
//! * `mixture_fit` — the four paper combinations on 1990-93 (Table III
//!   workload).
//! * `optimizer_ablation` — multi-start Nelder–Mead vs NM+LM polish vs
//!   differential evolution on the same fit, supporting DESIGN.md §5's
//!   optimizer ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use resilience_core::bathtub::{CompetingRisksFamily, QuadraticFamily};
use resilience_core::fit::{fit_least_squares, FitConfig};
use resilience_core::mixture::MixtureFamily;
use resilience_core::model::ModelFamily;
use resilience_data::recessions::Recession;
use std::hint::black_box;

fn bench_bathtub_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("bathtub_fit");
    let config = FitConfig::default();
    for recession in [Recession::R1990_93, Recession::R1980, Recession::R2020_21] {
        let series = recession.payroll_index();
        let train = series
            .split_at(series.len() - 5)
            .map(|s| s.train)
            .unwrap_or(series);
        group.bench_with_input(
            BenchmarkId::new("quadratic", recession.label()),
            &train,
            |b, s| b.iter(|| fit_least_squares(&QuadraticFamily, black_box(s), &config).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("competing_risks", recession.label()),
            &train,
            |b, s| {
                b.iter(|| fit_least_squares(&CompetingRisksFamily, black_box(s), &config).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_mixture_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("mixture_fit");
    group.sample_size(10);
    let config = FitConfig::default();
    let series = Recession::R1990_93.payroll_index();
    let train = series.split_at(43).map(|s| s.train).unwrap();
    for fam in MixtureFamily::paper_combinations() {
        group.bench_with_input(BenchmarkId::from_parameter(fam.name()), &train, |b, s| {
            b.iter(|| fit_least_squares(&fam, black_box(s), &config).unwrap())
        });
    }
    group.finish();
}

fn bench_optimizer_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer_ablation");
    group.sample_size(10);
    let series = Recession::R1990_93.payroll_index();
    let train = series.split_at(43).map(|s| s.train).unwrap();
    let nm_only = FitConfig {
        lm_polish: false,
        ..FitConfig::default()
    };
    let nm_lm = FitConfig::default();
    group.bench_function("nelder_mead_only", |b| {
        b.iter(|| fit_least_squares(&CompetingRisksFamily, black_box(&train), &nm_only).unwrap())
    });
    group.bench_function("nelder_mead_plus_lm", |b| {
        b.iter(|| fit_least_squares(&CompetingRisksFamily, black_box(&train), &nm_lm).unwrap())
    });
    // Differential evolution over the log-parameter box, for comparison.
    group.bench_function("differential_evolution", |b| {
        use rand::SeedableRng;
        use resilience_optim::differential_evolution::{differential_evolution, DeConfig};
        let fam = CompetingRisksFamily;
        let times = train.times().to_vec();
        let values = train.values().to_vec();
        let objective = move |internal: &[f64]| -> f64 {
            let params = fam.internal_to_params(internal);
            match fam.build(&params) {
                Ok(model) => times
                    .iter()
                    .zip(&values)
                    .map(|(&t, &y)| {
                        let d = y - model.predict(t);
                        d * d
                    })
                    .sum(),
                Err(_) => f64::INFINITY,
            }
        };
        let bounds = [(-8.0, 2.0), (-8.0, 2.0), (-12.0, 0.0)];
        b.iter(|| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            differential_evolution(&objective, &bounds, &DeConfig::default(), &mut rng).unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bathtub_fit,
    bench_mixture_fit,
    bench_optimizer_ablation
);
criterion_main!(benches);
