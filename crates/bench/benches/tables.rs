//! Criterion benches regenerating each full table/figure of the paper —
//! one benchmark per experiment, so a `cargo bench` run times the entire
//! reproduction end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_experiments");
    group.sample_size(10);
    group.bench_function("fig2_curves", |b| {
        b.iter(|| black_box(resilience_bench::fig2().unwrap()))
    });
    group.bench_function("table1_bathtub_validation", |b| {
        b.iter(|| black_box(resilience_bench::table1().unwrap()))
    });
    group.bench_function("fig3_quadratic_2001_05", |b| {
        b.iter(|| black_box(resilience_bench::fig3().unwrap()))
    });
    group.bench_function("fig4_competing_risks_1990_93", |b| {
        b.iter(|| black_box(resilience_bench::fig4().unwrap()))
    });
    group.bench_function("table2_bathtub_metrics", |b| {
        b.iter(|| black_box(resilience_bench::table2().unwrap()))
    });
    group.bench_function("table3_mixture_validation", |b| {
        b.iter(|| black_box(resilience_bench::table3().unwrap()))
    });
    group.bench_function("fig5_wei_exp_1990_93", |b| {
        b.iter(|| black_box(resilience_bench::fig5().unwrap()))
    });
    group.bench_function("fig6_mixtures_1981_83", |b| {
        b.iter(|| black_box(resilience_bench::fig6().unwrap()))
    });
    group.bench_function("table4_mixture_metrics", |b| {
        b.iter(|| black_box(resilience_bench::table4().unwrap()))
    });
    group.bench_function("ext_shape_sweep", |b| {
        b.iter(|| black_box(resilience_bench::shape_sweep().unwrap()))
    });
    group.bench_function("ext_trend_ablation", |b| {
        b.iter(|| black_box(resilience_bench::trend_ablation().unwrap()))
    });
    group.bench_function("ext_w_double_bathtub", |b| {
        b.iter(|| black_box(resilience_bench::w_extension().unwrap()))
    });
    group.bench_function("ext_l_crash_recovery", |b| {
        b.iter(|| black_box(resilience_bench::l_extension().unwrap()))
    });
    group.bench_function("ext_model_selection", |b| {
        b.iter(|| black_box(resilience_bench::selection_table().unwrap()))
    });
    group.bench_function("ext_bootstrap_band", |b| {
        b.iter(|| black_box(resilience_bench::bootstrap_comparison().unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
