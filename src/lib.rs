//! Meta-crate for the `predictive-resilience` workspace: re-exports the
//! five library crates and provides a [`prelude`] so applications can
//! depend on one crate.
//!
//! The workspace reproduces *Predictive Resilience Modeling* (Silva,
//! Hermosillo Hidalgo, Linkov, Fiondella — 2022 Resilience Week): fitting
//! bathtub-shaped and mixture-distribution models to degradation-and-
//! recovery curves so that performance, recovery time, and resilience
//! metrics can be predicted during a disruption. See the README for a
//! tour and `DESIGN.md`/`EXPERIMENTS.md` for the reproduction record.
//!
//! # Examples
//!
//! ```
//! use predictive_resilience::prelude::*;
//!
//! let series = Recession::R1990_93.payroll_index();
//! let eval = evaluate_model(&CompetingRisksFamily, &series, 5, 0.05)?;
//! assert!(eval.gof.r2_adj > 0.9);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub use resilience_core as core;
pub use resilience_data as data;
pub use resilience_math as math;
pub use resilience_optim as optim;
pub use resilience_stats as stats;

/// One-stop imports for typical applications: the model families, the
/// analysis drivers, and the embedded data sets.
pub mod prelude {
    pub use resilience_core::analysis::{
        band_series, evaluate_model, metrics_comparison, ModelEvaluation,
    };
    pub use resilience_core::bathtub::{
        CompetingRisksFamily, CompetingRisksModel, QuadraticFamily, QuadraticModel, QuarticFamily,
        QuarticModel,
    };
    pub use resilience_core::diagnostics::{residual_diagnostics, ResidualDiagnostics};
    pub use resilience_core::extended::{
        CrashRecoveryFamily, CrashRecoveryModel, DoubleBathtubFamily, DoubleBathtubModel,
    };
    pub use resilience_core::fit::{fit_least_squares, FitConfig, FittedModel};
    pub use resilience_core::forecast::{forecast, recovery_outlook, Forecast, ForecastPoint};
    pub use resilience_core::metrics::{
        actual_metric, point_metrics, predicted_metric, relative_error, MetricContext, MetricKind,
    };
    pub use resilience_core::mixture::{ComponentKind, MixtureFamily, MixtureModel, Trend};
    pub use resilience_core::model::{ModelFamily, ResilienceModel};
    pub use resilience_core::runtime::{
        fit_with_retry, rank_models_supervised, CancelToken, Control, ExecPolicy, RetryPolicy,
        SupervisedFit,
    };
    pub use resilience_core::selection::{rank_models, FailureKind, FamilyFailure, Ranking};
    pub use resilience_core::validate::{gof_report, GofReport};
    pub use resilience_core::CoreError;
    pub use resilience_data::recessions::Recession;
    pub use resilience_data::scenario::{
        Drift, EventProcess, Noise, Recovery, ScenarioSpec, ShapeKind, Shock,
    };
    pub use resilience_data::{PerformanceSeries, TrainTestSplit};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_supports_typical_flow() {
        let series = Recession::R2001_05.payroll_index();
        let fit = fit_least_squares(&QuadraticFamily, &series, &FitConfig::default()).unwrap();
        assert_eq!(fit.model.name(), "Quadratic");
        let pm = point_metrics(fit.model.as_ref(), 0.0, 47.0).unwrap();
        assert!(pm.robustness > 0.9 && pm.robustness < 1.0);
    }

    #[test]
    fn prelude_exposes_supervised_runtime() {
        let series = Recession::R2001_05.payroll_index();
        let families: Vec<&dyn ModelFamily> = vec![&QuadraticFamily];
        let ranking = rank_models_supervised(
            &families,
            &series,
            &FitConfig::default(),
            &ExecPolicy::default(),
            &Control::unbounded(),
        )
        .unwrap();
        assert!(!ranking.degraded);
        assert_eq!(ranking.rows[0].family_name, "Quadratic");
    }

    #[test]
    fn crate_aliases_resolve() {
        let _ = crate::math::approx_eq(1.0, 1.0, 0.0, 0.0);
        let _ = crate::stats::Normal::standard();
        assert_eq!(crate::data::recessions::Recession::ALL.len(), 7);
    }
}
