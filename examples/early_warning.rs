//! Early-warning study: how soon after the hazard can the models predict
//! the eventual trough and recovery?
//!
//! The paper's core motivation is acting *during* the disruption. This
//! example refits the competing-risks model on growing prefixes of the
//! 1981-83 recession and tracks how the predicted trough depth/time and
//! the predicted time of recovery to nominal converge toward the truth as
//! months of data accumulate.
//!
//! ```sh
//! cargo run --release --example early_warning
//! ```

use resilience_core::bathtub::{CompetingRisksFamily, CompetingRisksModel};
use resilience_core::fit::{fit_least_squares, FitConfig};
use resilience_data::recessions::Recession;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = Recession::R1981_83.payroll_index();
    let (true_trough_t, true_trough_p) = full.trough().expect("non-empty");
    let nominal = full.nominal();
    // Ground truth recovery month: first observation back at nominal
    // after the trough.
    let true_recovery = full
        .iter()
        .find(|&(t, v)| t > true_trough_t && v >= nominal)
        .map(|(t, _)| t);

    println!("1981-83 recession — truth: trough P({true_trough_t}) = {true_trough_p:.4}, ");
    match true_recovery {
        Some(t) => println!("recovery to nominal at t = {t}\n"),
        None => println!("no recovery within the data\n"),
    }
    println!(
        "{:>8} {:>12} {:>12} {:>14}",
        "months", "pred trough", "pred depth", "pred recovery"
    );

    let config = FitConfig::default();
    for months in [8, 12, 16, 20, 24, 30, 36, 43] {
        let prefix = full.split_at(months)?.train;
        let Ok(fit) = fit_least_squares(&CompetingRisksFamily, &prefix, &config) else {
            println!("{months:>8} fit failed");
            continue;
        };
        let model = CompetingRisksModel::new(fit.params[0], fit.params[1], fit.params[2])?;
        let trough_t = model.trough();
        let trough_p = model.minimum();
        let recovery = model
            .recovery_time(nominal)
            .map(|t| format!("{t:10.1}"))
            .unwrap_or_else(|_| "     never".to_string());
        println!("{months:>8} {trough_t:>12.1} {trough_p:>12.4} {recovery:>14}");
    }

    println!(
        "\nWith only pre-trough data the forecasts are unstable; once the trough is\n\
         in view (~month 20) the predicted recovery time settles near the truth —\n\
         the behaviour that makes these models usable for early decisions."
    );
    Ok(())
}
