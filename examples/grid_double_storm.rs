//! Infrastructure scenario: a power grid hit by two storms in sequence —
//! the W-shaped case that defeats the paper's single-episode models.
//!
//! A first storm knocks out feeders; restoration is underway when a
//! second front lands. We fit the paper's competing-risks model and the
//! workspace's double-bathtub extension side by side, then inspect the
//! residual diagnostics that reveal *why* the single-episode fit is
//! inadequate even before looking at R².
//!
//! ```sh
//! cargo run --release --example grid_double_storm
//! ```

use resilience_core::analysis::evaluate_model;
use resilience_core::bathtub::CompetingRisksFamily;
use resilience_core::diagnostics::residual_diagnostics;
use resilience_core::extended::DoubleBathtubFamily;
use resilience_core::model::ModelFamily;
use resilience_data::scenario::{Drift, Noise, Recovery, ScenarioSpec, Shock};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Hourly fraction of customers with power over 96 hours, declared as
    // a two-pulse scenario over the shock grammar.
    let storm = ScenarioSpec {
        n: 96,
        shocks: vec![
            // First storm: fast outage growth, crews restore within ~30 h.
            Shock::Pulse {
                start: 0.0,
                trough: 10.0,
                depth: 0.12,
                sharpness: 1.3,
                recovery: Recovery::Exponential { rate: 0.07 },
            },
            // Second front lands at hour 40.
            Shock::Pulse {
                start: 40.0,
                trough: 52.0,
                depth: 0.09,
                sharpness: 1.1,
                recovery: Recovery::Exponential { rate: 0.06 },
            },
        ],
        events: None,
        drift: Drift::None,
        noise: Noise::Gaussian {
            sd: 0.003,
            seed: 0x57012,
        },
        floor: None,
    };
    let series = storm.generate("grid double storm")?;
    println!("data: {series}");

    for family in [
        &CompetingRisksFamily as &dyn ModelFamily,
        &DoubleBathtubFamily,
    ] {
        let eval = evaluate_model(family, &series, 8, 0.05)?;
        let diag = residual_diagnostics(eval.fit.model.as_ref(), &series)?;
        println!("\n{}:", eval.family_name);
        println!("  adjusted R²        {:.4}", eval.gof.r2_adj);
        println!("  train SSE          {:.6}", eval.gof.sse);
        println!("  lag-1 residual ACF {:+.3}", diag.lag1_autocorrelation);
        println!(
            "  sign runs          {} observed vs {:.1} expected",
            diag.runs, diag.expected_runs
        );
        println!(
            "  residuals look     {}",
            if diag.looks_unstructured() {
                "unstructured (model adequate)"
            } else {
                "structured (model misses dynamics)"
            }
        );
    }

    println!(
        "\nThe single-episode model averages over both storms; its residuals trace\n\
         the second outage. The double-bathtub extension assigns the second storm\n\
         its own episode, as the paper's conclusion prescribes for W-shaped events."
    );
    Ok(())
}
