//! Full recession study: fit the two bathtub families and the four paper
//! mixture combinations to all seven U.S. recessions and print a
//! model-selection summary — which family best explains and best
//! *predicts* each recession class.
//!
//! ```sh
//! cargo run --release --example recession_analysis
//! ```

use resilience_core::analysis::{evaluate_model, ModelEvaluation};
use resilience_core::bathtub::{CompetingRisksFamily, QuadraticFamily};
use resilience_core::mixture::MixtureFamily;
use resilience_core::model::ModelFamily;
use resilience_core::report::Table;
use resilience_data::recessions::Recession;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut table = Table::new(
        [
            "Recession",
            "Shape",
            "Best fit (r2_adj)",
            "Best prediction (PMSE)",
            "Verdict",
        ]
        .map(String::from)
        .to_vec(),
    );

    for recession in Recession::ALL {
        let series = recession.payroll_index();
        let holdout = if series.len() >= 40 { 5 } else { 3 };

        // Candidate models: 2 bathtubs + 4 mixtures.
        let mut evals: Vec<ModelEvaluation> = Vec::new();
        for fam in [&QuadraticFamily as &dyn ModelFamily, &CompetingRisksFamily] {
            evals.push(evaluate_model(fam, &series, holdout, 0.05)?);
        }
        for fam in MixtureFamily::paper_combinations() {
            evals.push(evaluate_model(&fam, &series, holdout, 0.05)?);
        }

        let best_fit = evals
            .iter()
            .max_by(|a, b| a.gof.r2_adj.total_cmp(&b.gof.r2_adj))
            .expect("non-empty");
        let best_pred = evals
            .iter()
            .min_by(|a, b| a.gof.pmse.total_cmp(&b.gof.pmse))
            .expect("non-empty");
        let verdict = if best_fit.gof.r2_adj > 0.9 {
            "well modeled"
        } else if best_fit.gof.r2_adj > 0.6 {
            "marginal"
        } else {
            "not captured (needs richer models)"
        };
        table.add_row(vec![
            recession.label().to_string(),
            recession.shape().to_string(),
            format!("{} ({:.4})", best_fit.family_name, best_fit.gof.r2_adj),
            format!("{} ({:.2e})", best_pred.family_name, best_pred.gof.pmse),
            verdict.to_string(),
        ]);
    }

    println!("Model selection across the seven U.S. recessions");
    println!("(fit on all but the final months; prediction scored on the held-out suffix)\n");
    println!("{table}");
    println!(
        "\nAs in the paper: V- and U-shaped recessions are modeled well, while the\n\
         W-shaped 1980 and L-shaped 2020-21 episodes defeat every single-episode family."
    );
    Ok(())
}
