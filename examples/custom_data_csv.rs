//! Bring your own data: load a resilience curve from CSV (e.g. the real
//! BLS payroll series, a grid-frequency trace, an SLO dashboard export)
//! and run the identical pipeline.
//!
//! The example writes a small CSV to a temp file first so it is fully
//! self-contained; point `read_series_file` at your own export instead.
//!
//! ```sh
//! cargo run --release --example custom_data_csv
//! ```

use resilience_core::analysis::{evaluate_model, metrics_comparison};
use resilience_core::mixture::MixtureFamily;
use resilience_data::csv::{read_series_file, write_series};
use resilience_data::recessions::Recession;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Simulate a user export: dump the 2001-05 curve to disk as CSV.
    let path = std::env::temp_dir().join("my_resilience_curve.csv");
    {
        let file = std::fs::File::create(&path)?;
        write_series(file, &Recession::R2001_05.payroll_index())?;
    }
    println!("wrote {}", path.display());

    // Load it back — this is the entry point for real external data.
    let series = read_series_file(&path)?;
    println!("loaded: {series}\n");

    // Fit the paper's four mixture combinations on the first 90 %.
    let holdout = (series.len() as f64 * 0.1).round() as usize;
    let evals: Vec<_> = MixtureFamily::paper_combinations()
        .iter()
        .map(|fam| evaluate_model(fam, &series, holdout, 0.05))
        .collect::<Result<_, _>>()?;

    println!(
        "{:10} {:>12} {:>12} {:>10} {:>8}",
        "model", "SSE", "PMSE", "r2_adj", "EC"
    );
    for e in &evals {
        println!(
            "{:10} {:>12.3e} {:>12.3e} {:>10.4} {:>7.1}%",
            e.family_name,
            e.gof.sse,
            e.gof.pmse,
            e.gof.r2_adj,
            100.0 * e.gof.ec
        );
    }

    // Predictive interval metrics (paper Table IV protocol) for the lot.
    println!("\npredictive metrics (actual | per-model prediction):");
    for row in metrics_comparison(&evals, &series, 0.5)? {
        print!("  {:45} {:>10.4} |", row.kind.label(), row.actual);
        for (_, predicted, _) in &row.predictions {
            print!(" {predicted:>10.4}");
        }
        println!();
    }

    std::fs::remove_file(&path).ok();
    Ok(())
}
