//! Graceful degradation: ranking a family pool that contains a
//! pathologically slow family and an outright buggy (panicking) one.
//!
//! Production model sweeps cannot assume every candidate family is
//! well-behaved. This example runs `rank_models_supervised` with a
//! per-family time budget over a pool where one family's objective is
//! slow enough to blow the budget and another panics. Both are converted
//! into typed failure rows; the healthy families rank normally and the
//! result is flagged `degraded` (DESIGN.md §9).
//!
//! ```sh
//! cargo run --release --example degraded_ranking
//! ```

use resilience_core::bathtub::{CompetingRisksFamily, QuadraticFamily};
use resilience_core::fit::FitConfig;
use resilience_core::model::{ModelFamily, ResilienceModel};
use resilience_core::runtime::{rank_models_supervised, Control, ExecPolicy, RetryPolicy};
use resilience_core::CoreError;
use resilience_data::recessions::Recession;
use resilience_data::PerformanceSeries;
use resilience_optim::Parallelism;
use std::time::Duration;

/// A constant-curve family whose every objective evaluation sleeps —
/// a stand-in for a family whose SSE surface is pathologically expensive.
struct GlacialFamily;

struct ConstantModel(f64);

impl ResilienceModel for ConstantModel {
    fn name(&self) -> &'static str {
        "Glacial"
    }
    fn params(&self) -> Vec<f64> {
        vec![self.0]
    }
    fn predict(&self, _t: f64) -> f64 {
        self.0
    }
}

impl ModelFamily for GlacialFamily {
    fn name(&self) -> &'static str {
        "Glacial"
    }
    fn n_params(&self) -> usize {
        1
    }
    fn internal_to_params(&self, internal: &[f64]) -> Vec<f64> {
        internal.to_vec()
    }
    fn params_to_internal(&self, params: &[f64]) -> Result<Vec<f64>, CoreError> {
        Ok(params.to_vec())
    }
    fn predict_params_into(&self, params: &[f64], _ts: &[f64], out: &mut [f64]) -> bool {
        std::thread::sleep(Duration::from_millis(25));
        out.fill(params[0]);
        true
    }
    fn build(&self, params: &[f64]) -> Result<Box<dyn ResilienceModel>, CoreError> {
        Ok(Box::new(ConstantModel(params[0])))
    }
    fn initial_guesses(&self, _series: &PerformanceSeries) -> Vec<Vec<f64>> {
        vec![vec![1.0]]
    }
}

/// A buggy family whose objective panics mid-fit.
struct BuggyFamily;

impl ModelFamily for BuggyFamily {
    fn name(&self) -> &'static str {
        "Buggy"
    }
    fn n_params(&self) -> usize {
        1
    }
    fn internal_to_params(&self, internal: &[f64]) -> Vec<f64> {
        internal.to_vec()
    }
    fn params_to_internal(&self, params: &[f64]) -> Result<Vec<f64>, CoreError> {
        Ok(params.to_vec())
    }
    fn predict_params_into(&self, _params: &[f64], _ts: &[f64], _out: &mut [f64]) -> bool {
        panic!("unhandled edge case in Buggy::predict_params_into");
    }
    fn build(&self, _params: &[f64]) -> Result<Box<dyn ResilienceModel>, CoreError> {
        Err(CoreError::params("Buggy", "never buildable"))
    }
    fn initial_guesses(&self, _series: &PerformanceSeries) -> Vec<Vec<f64>> {
        vec![vec![1.0]]
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The injected panic is part of the demonstration; keep its default
    // backtrace spew out of the report.
    std::panic::set_hook(Box::new(|_| {}));

    let series = Recession::R1990_93.payroll_index();
    let glacial = GlacialFamily;
    let families: Vec<&dyn ModelFamily> = vec![
        &QuadraticFamily,
        &CompetingRisksFamily,
        &glacial,
        &BuggyFamily,
    ];

    let config = FitConfig {
        parallelism: Parallelism::Serial,
        ..FitConfig::default()
    };
    let policy = ExecPolicy {
        family_budget: Some(Duration::from_millis(100)),
        retry: Some(RetryPolicy::default()),
        ..ExecPolicy::default()
    };

    println!(
        "supervised ranking on {series}: {} candidates, 100 ms budget per family\n",
        families.len()
    );
    let ranking =
        rank_models_supervised(&families, &series, &config, &policy, &Control::unbounded())?;

    println!(
        "{:16} {:>12} {:>10} {:>10}",
        "model", "SSE", "r2_adj", "AICc"
    );
    for row in &ranking.rows {
        let aicc = row
            .criteria
            .map(|c| format!("{:.1}", c.aicc))
            .unwrap_or_else(|| "-inf".into());
        println!(
            "{:16} {:>12.3e} {:>10.4} {:>10}",
            row.family_name, row.sse, row.r2_adj, aicc
        );
    }

    println!("\ndegradation report (degraded = {}):", ranking.degraded);
    for failure in &ranking.failures {
        println!(
            "  {:12} [{}] {}",
            failure.family_name, failure.kind, failure.reason
        );
    }
    println!(
        "\n{} of {} families survived; the ranking is usable but flagged, and every\n\
         loss is classified (timed out / panicked / error) for the report layer.",
        ranking.rows.len(),
        families.len()
    );
    Ok(())
}
