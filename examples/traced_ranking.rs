//! Telemetry: the degraded-ranking scenario re-run under a recording
//! observer, aggregated into a per-family run report.
//!
//! Same pool as `degraded_ranking` — two healthy families, one whose
//! objective is pathologically slow (blows its 100 ms budget), one that
//! panics — but this time the run is observed: every solver iteration,
//! retry, stop, and failure lands in an in-memory event log, which the
//! [`RunReport`] aggregation turns into the table printed at the end.
//! The log is deterministic (logical clocks only, never wall-clock), so
//! apart from which families time out, re-running prints the same trace.
//!
//! ```sh
//! cargo run --release --example traced_ranking
//! # additionally write the raw event log for the fitlog inspector:
//! FITLOG_PATH=run.jsonl cargo run --release --example traced_ranking
//! cargo run --release -p resilience-bench --bin fitlog -- run.jsonl
//! ```

use resilience_core::bathtub::{CompetingRisksFamily, QuadraticFamily};
use resilience_core::fit::FitConfig;
use resilience_core::model::{ModelFamily, ResilienceModel};
use resilience_core::runtime::{rank_models_supervised, Control, ExecPolicy, RetryPolicy};
use resilience_core::CoreError;
use resilience_data::recessions::Recession;
use resilience_data::PerformanceSeries;
use resilience_obs::{replay, Event, JsonlObserver, RecordingObserver, RunReport};
use resilience_optim::Parallelism;
use std::sync::Arc;
use std::time::Duration;

/// A constant-curve family whose every objective evaluation sleeps —
/// a stand-in for a family whose SSE surface is pathologically expensive.
struct GlacialFamily;

struct ConstantModel(f64);

impl ResilienceModel for ConstantModel {
    fn name(&self) -> &'static str {
        "Glacial"
    }
    fn params(&self) -> Vec<f64> {
        vec![self.0]
    }
    fn predict(&self, _t: f64) -> f64 {
        self.0
    }
}

impl ModelFamily for GlacialFamily {
    fn name(&self) -> &'static str {
        "Glacial"
    }
    fn n_params(&self) -> usize {
        1
    }
    fn internal_to_params(&self, internal: &[f64]) -> Vec<f64> {
        internal.to_vec()
    }
    fn params_to_internal(&self, params: &[f64]) -> Result<Vec<f64>, CoreError> {
        Ok(params.to_vec())
    }
    fn predict_params_into(&self, params: &[f64], _ts: &[f64], out: &mut [f64]) -> bool {
        std::thread::sleep(Duration::from_millis(25));
        out.fill(params[0]);
        true
    }
    fn build(&self, params: &[f64]) -> Result<Box<dyn ResilienceModel>, CoreError> {
        Ok(Box::new(ConstantModel(params[0])))
    }
    fn initial_guesses(&self, _series: &PerformanceSeries) -> Vec<Vec<f64>> {
        vec![vec![1.0]]
    }
}

/// A buggy family whose objective panics mid-fit.
struct BuggyFamily;

impl ModelFamily for BuggyFamily {
    fn name(&self) -> &'static str {
        "Buggy"
    }
    fn n_params(&self) -> usize {
        1
    }
    fn internal_to_params(&self, internal: &[f64]) -> Vec<f64> {
        internal.to_vec()
    }
    fn params_to_internal(&self, params: &[f64]) -> Result<Vec<f64>, CoreError> {
        Ok(params.to_vec())
    }
    fn predict_params_into(&self, _params: &[f64], _ts: &[f64], _out: &mut [f64]) -> bool {
        panic!("unhandled edge case in Buggy::predict_params_into");
    }
    fn build(&self, _params: &[f64]) -> Result<Box<dyn ResilienceModel>, CoreError> {
        Err(CoreError::params("Buggy", "never buildable"))
    }
    fn initial_guesses(&self, _series: &PerformanceSeries) -> Vec<Vec<f64>> {
        vec![vec![1.0]]
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The injected panic is part of the demonstration; keep its default
    // backtrace spew out of the report.
    std::panic::set_hook(Box::new(|_| {}));

    let series = Recession::R1990_93.payroll_index();
    let glacial = GlacialFamily;
    let families: Vec<&dyn ModelFamily> = vec![
        &QuadraticFamily,
        &CompetingRisksFamily,
        &glacial,
        &BuggyFamily,
    ];

    let config = FitConfig {
        parallelism: Parallelism::Serial,
        ..FitConfig::default()
    };
    let policy = ExecPolicy {
        family_budget: Some(Duration::from_millis(100)),
        retry: Some(RetryPolicy::default()),
        ..ExecPolicy::default()
    };

    let recorder = Arc::new(RecordingObserver::new());
    let control = Control::unbounded().observe(recorder.clone());

    println!(
        "traced supervised ranking on {series}: {} candidates, 100 ms budget per family\n",
        families.len()
    );
    let ranking = rank_models_supervised(&families, &series, &config, &policy, &control)?;
    let events = recorder.take();

    // A few raw events first — the report below is an aggregation of
    // exactly this stream.
    println!("event log: {} events; first spans:", events.len());
    for event in events
        .iter()
        .filter(|e| {
            matches!(
                e,
                Event::FitStarted { .. }
                    | Event::FitFinished { .. }
                    | Event::FitFailed { .. }
                    | Event::RetryScheduled { .. }
                    | Event::Stop { .. }
                    | Event::WorkerPanic { .. }
            )
        })
        .take(12)
    {
        println!("  {}", event.to_json());
    }

    if let Ok(path) = std::env::var("FITLOG_PATH") {
        let sink = JsonlObserver::create(std::path::Path::new(&path))?;
        replay(&events, &sink);
        drop(sink);
        println!("\nwrote the full event log to {path} (inspect with the fitlog bin)");
    }

    let report = RunReport::from_events(events);
    println!("\n{}", report.render_table());

    println!(
        "ranking degraded = {}; every failure above is also a typed row in the\n\
         ranking itself — the telemetry adds the how (retries, stops, iteration\n\
         counts), not the what.",
        ranking.degraded
    );
    Ok(())
}
