//! Model selection: choosing among nine candidate families with
//! information criteria and forward-chaining cross validation.
//!
//! The paper notes model selection is "ultimately a subjective choice"
//! balancing complexity against predictive accuracy. This example makes
//! the tradeoff concrete on one recession: AICc/BIC rankings (in-sample,
//! complexity-penalized) next to expanding-window cross validation
//! (purely out-of-sample).
//!
//! ```sh
//! cargo run --release --example model_selection
//! ```

use resilience_core::bathtub::{CompetingRisksFamily, QuadraticFamily, QuarticFamily};
use resilience_core::extended::{CrashRecoveryFamily, DoubleBathtubFamily};
use resilience_core::fit::FitConfig;
use resilience_core::mixture::MixtureFamily;
use resilience_core::model::ModelFamily;
use resilience_core::selection::{forward_chain_cv, rank_models};
use resilience_data::recessions::Recession;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let series = Recession::R2007_09.payroll_index();
    println!("candidate families on {series}\n");

    let mixtures = MixtureFamily::paper_combinations();
    let mut families: Vec<&dyn ModelFamily> = vec![
        &QuadraticFamily,
        &CompetingRisksFamily,
        &QuarticFamily,
        &DoubleBathtubFamily,
        &CrashRecoveryFamily,
    ];
    for fam in &mixtures {
        families.push(fam);
    }

    // In-sample, complexity penalized.
    println!(
        "{:16} {:>3} {:>12} {:>10} {:>10} {:>10}",
        "model", "k", "SSE", "r2_adj", "AICc", "BIC"
    );
    let ranking = rank_models(&families, &series, &FitConfig::default())?;
    for failure in &ranking.failures {
        println!("{:16} failed: {}", failure.family_name, failure.reason);
    }
    for row in &ranking.rows {
        let (aicc, bic) = row
            .criteria
            .map(|c| (format!("{:.1}", c.aicc), format!("{:.1}", c.bic)))
            .unwrap_or_else(|| ("-inf".into(), "-inf".into()));
        println!(
            "{:16} {:>3} {:>12.3e} {:>10.4} {:>10} {:>10}",
            row.family_name, row.n_params, row.sse, row.r2_adj, aicc, bic
        );
    }

    // Out-of-sample: expanding-window CV, 3-month forecast horizon.
    println!("\nforward-chaining cross validation (3-month horizon, splits every 4 months):");
    println!("{:16} {:>14} {:>8}", "model", "mean PMSE", "folds");
    let mut cv_rows = Vec::new();
    for fam in &families {
        match forward_chain_cv(*fam, &series, 30, 3, 4, &FitConfig::default()) {
            Ok(cv) => cv_rows.push(cv),
            Err(e) => println!("{:16} failed: {e}", fam.name()),
        }
    }
    cv_rows.sort_by(|a, b| a.mean_pmse.total_cmp(&b.mean_pmse));
    for cv in &cv_rows {
        println!(
            "{:16} {:>14.3e} {:>8}",
            cv.family_name,
            cv.mean_pmse,
            cv.fold_pmse.len()
        );
    }

    println!(
        "\nThe AICc winner explains the observed curve best per parameter; the CV\n\
         winner forecasts best. When they disagree, the paper's guidance applies:\n\
         pick by the decision you need the model for."
    );
    Ok(())
}
