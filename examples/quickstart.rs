//! Quickstart: fit both bathtub models to one recession curve, inspect
//! goodness of fit, and predict the recovery time.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use resilience_core::analysis::evaluate_model;
use resilience_core::bathtub::{CompetingRisksFamily, CompetingRisksModel, QuadraticFamily};
use resilience_core::model::ModelFamily;
use resilience_data::recessions::Recession;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a data set: the 1990-93 U.S. recession (a shallow U-shape).
    let series = Recession::R1990_93.payroll_index();
    println!("data: {series}");
    let (t_min, p_min) = series.trough().expect("non-empty series");
    println!("observed trough: P({t_min}) = {p_min:.4}\n");

    // 2. Fit each bathtub family on all but the last five months and
    //    validate the prediction (the paper's Table I protocol).
    for family in [&QuadraticFamily as &dyn ModelFamily, &CompetingRisksFamily] {
        let eval = evaluate_model(family, &series, 5, 0.05)?;
        println!("{}:", eval.family_name);
        println!("  params       {:?}", eval.fit.params);
        println!("  SSE (train)  {:.8}", eval.gof.sse);
        println!("  PMSE (test)  {:.8}", eval.gof.pmse);
        println!("  adjusted R²  {:.6}", eval.gof.r2_adj);
        println!("  EC (95% CI)  {:.2}%", 100.0 * eval.gof.ec);
        println!();
    }

    // 3. Ask the competing-risks model when the system recovers to the
    //    nominal level — the predictive question the paper motivates.
    let eval = evaluate_model(&CompetingRisksFamily, &series, 5, 0.05)?;
    let model =
        CompetingRisksModel::new(eval.fit.params[0], eval.fit.params[1], eval.fit.params[2])?;
    let nominal = series.nominal();
    match model.recovery_time(nominal) {
        Ok(t) => println!("predicted recovery to nominal {nominal}: t = {t:.1} months"),
        Err(e) => println!("no recovery predicted: {e}"),
    }
    Ok(())
}
