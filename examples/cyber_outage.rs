//! Cyber-resilience scenario: predict service recovery *during* an
//! ongoing incident.
//!
//! The paper motivates predictive resilience modeling with cybersecurity:
//! performance is the fraction of capacity preserved while compromised
//! hosts are quarantined and restored. This example simulates a service
//! degraded by an attack (hourly samples), fits the models on the data
//! available *mid-incident*, and forecasts when performance returns to
//! the 99 % service-level objective — then checks the forecast against
//! the withheld remainder of the incident.
//!
//! ```sh
//! cargo run --release --example cyber_outage
//! ```

use resilience_core::analysis::evaluate_model;
use resilience_core::bathtub::{CompetingRisksFamily, CompetingRisksModel};
use resilience_core::metrics::{actual_metric, predicted_metric, MetricContext, MetricKind};
use resilience_data::scenario::{Drift, Noise, Recovery, ScenarioSpec, Shock};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 72-hour incident: intrusion at t = 0, capacity bottoms out ~35 %
    // down at hour 18 as worms spread faster than quarantine, then
    // recovery as restoration outpaces the attack — declared as a
    // single-pulse scenario over the shock grammar.
    let incident = ScenarioSpec {
        n: 72,
        shocks: vec![Shock::Pulse {
            start: 0.0,
            trough: 18.0,
            depth: 0.35,
            sharpness: 1.1,
            recovery: Recovery::Exponential { rate: 0.09 },
        }],
        events: None,
        drift: Drift::None,
        noise: Noise::Gaussian {
            sd: 0.004,
            seed: 0xC0FFEE,
        },
        floor: None,
    };
    let full = incident.generate("cyber incident")?;

    // Mid-incident: only the first 30 hours have been observed.
    let observed_hours = 30;
    let holdout = full.len() - observed_hours;
    let eval = evaluate_model(&CompetingRisksFamily, &full, holdout, 0.05)?;
    println!(
        "fitted {} on the first {observed_hours} hours",
        eval.family_name
    );
    println!("  params: {:?}", eval.fit.params);
    println!(
        "  train SSE {:.6}, adjusted R² {:.4}\n",
        eval.gof.sse, eval.gof.r2_adj
    );

    // Forecast: when does capacity recover to the 99 % SLO?
    let model =
        CompetingRisksModel::new(eval.fit.params[0], eval.fit.params[1], eval.fit.params[2])?;
    let slo = 0.99;
    let forecast = model.recovery_time(slo)?;
    // Ground truth from the withheld data: first observed hour at/above SLO
    // after the trough.
    let (t_min, _) = full.trough().expect("incident has a trough");
    let actual = full
        .iter()
        .find(|&(t, v)| t > t_min && v >= slo)
        .map(|(t, _)| t);
    println!("recovery to {:.0}% capacity:", slo * 100.0);
    println!("  forecast (from hour {observed_hours}):  t = {forecast:.1} h");
    match actual {
        Some(t) => println!("  actual (withheld data):     t = {t:.1} h"),
        None => println!("  actual: not reached within the 72 h window"),
    }

    // Predictive interval metrics over the unobserved remainder.
    let split = full.split_at(observed_hours)?;
    let ctx = MetricContext::predictive(&split, &full, &model, 0.5)?;
    println!(
        "\npredictive interval metrics over hours {}..{}:",
        ctx.t_start, ctx.t_end
    );
    for kind in [
        MetricKind::PerformancePreserved,
        MetricKind::AveragePreserved,
        MetricKind::NormalizedAveragePreserved,
    ] {
        let a = actual_metric(&full, kind, &ctx)?;
        let p = predicted_metric(&model, kind, &ctx)?;
        println!("  {:45} actual {a:9.4}   predicted {p:9.4}", kind.label());
    }
    Ok(())
}
