//! End-to-end telemetry determinism (DESIGN.md §10).
//!
//! The telemetry contract: events carry logical clocks only (iteration
//! and evaluation counts, start/family indices) — never wall-clock — so
//! the JSONL encoding of an observed run is **byte-identical** across
//! thread counts and across re-runs. These tests pin that contract on a
//! real multi-family ranking, round-trip the log through the parser, and
//! check that a degraded run (stops, failures) aggregates into a
//! NaN-free run report.

use resilience_core::bathtub::{CompetingRisksFamily, QuadraticFamily, QuarticFamily};
use resilience_core::fit::FitConfig;
use resilience_core::model::ModelFamily;
use resilience_core::runtime::{rank_models_supervised, Control, ExecPolicy, RetryPolicy};
use resilience_data::recessions::Recession;
use resilience_obs::{
    parse_line, parse_log, replay, CounterId, Event, JsonlObserver, MetricsSnapshot,
    RecordingObserver, RunReport, SpanTree,
};
use resilience_optim::Parallelism;
use std::sync::Arc;

fn families() -> Vec<&'static dyn ModelFamily> {
    vec![&QuadraticFamily, &CompetingRisksFamily, &QuarticFamily]
}

/// One observed supervised ranking over the 1990–93 payroll series.
fn traced_ranking(parallelism: Parallelism) -> Vec<Event> {
    let series = Recession::R1990_93.payroll_index();
    let config = FitConfig {
        parallelism,
        ..FitConfig::default()
    };
    let policy = ExecPolicy {
        family_budget: None,
        retry: Some(RetryPolicy::default()),
        ..ExecPolicy::default()
    };
    let recorder = Arc::new(RecordingObserver::new());
    let fams = families();
    rank_models_supervised(
        &fams,
        &series,
        &config,
        &policy,
        &Control::unbounded().observe(recorder.clone()),
    )
    .expect("ranking succeeds");
    recorder.take()
}

/// Encodes events exactly as the file sink would: one JSON line each.
fn to_jsonl(events: &[Event]) -> String {
    let sink = JsonlObserver::new(Vec::new());
    replay(events, &sink);
    String::from_utf8(sink.into_inner()).expect("JSONL is UTF-8")
}

/// The tentpole determinism claim: the serial and 4-thread event logs of
/// the same seeded ranking are byte-identical after JSONL encoding.
#[test]
fn event_log_bytes_are_identical_across_thread_counts() {
    let serial = to_jsonl(&traced_ranking(Parallelism::Serial));
    assert!(!serial.is_empty());
    for p in [Parallelism::Fixed(2), Parallelism::Fixed(4)] {
        let parallel = to_jsonl(&traced_ranking(p));
        assert_eq!(parallel, serial, "{p:?} log diverged from serial");
    }
}

/// Re-running the identical configuration reproduces the identical log —
/// no wall-clock, no global state.
#[test]
fn event_log_is_reproducible_across_runs() {
    let a = to_jsonl(&traced_ranking(Parallelism::Fixed(2)));
    let b = to_jsonl(&traced_ranking(Parallelism::Fixed(2)));
    assert_eq!(a, b);
}

/// Every event the pipeline emits survives the JSONL round trip, and the
/// reparsed log aggregates to the same report as the in-memory events.
#[test]
fn jsonl_round_trip_preserves_the_log() {
    let events = traced_ranking(Parallelism::Serial);
    let text = to_jsonl(&events);
    let reparsed = parse_log(&text).expect("log parses");
    assert_eq!(reparsed, events);

    let direct = RunReport::from_events(events);
    let via_file = RunReport::from_events(reparsed);
    assert_eq!(direct.to_json(), via_file.to_json());
    assert_eq!(direct.render_table(), via_file.render_table());
}

/// Exhaustive parse round-trip over the full event vocabulary: every
/// variant of [`Event::examples`] — all counter/histogram ids, failure
/// codes, solver kinds, exit reasons, stop kinds, chaos kinds, plus
/// non-finite float payloads — encodes to one JSON line, reparses, and
/// re-encodes to the identical bytes. Byte-level comparison sidesteps
/// `NaN != NaN` while still pinning the whole codec.
#[test]
fn every_event_shape_survives_the_jsonl_round_trip() {
    let examples = Event::examples();
    assert!(examples.len() > 40, "vocabulary shrank? {}", examples.len());
    for event in &examples {
        let mut line = String::new();
        event.write_json(&mut line);
        let reparsed = parse_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
        let mut again = String::new();
        reparsed.write_json(&mut again);
        assert_eq!(line, again, "round trip changed the encoding");
    }
}

/// The analysis plane inherits the byte-identity contract: the span tree
/// and the metrics exposition rebuilt from serial and `Fixed(2)` logs of
/// the same ranking render identical bytes (DESIGN.md §15).
#[test]
fn span_tree_and_metrics_are_identical_across_thread_counts() {
    let serial = traced_ranking(Parallelism::Serial);
    let fixed2 = traced_ranking(Parallelism::Fixed(2));

    let tree = SpanTree::build(&serial);
    assert_eq!(tree.cells.len(), 1, "one series ⇒ one cell");
    assert_eq!(tree.fits(), families().len() as u64);
    assert_eq!(tree.unattributed_evaluations, 0);
    assert_eq!(
        tree.render(usize::MAX, 4),
        SpanTree::build(&fixed2).render(usize::MAX, 4),
        "span tree diverged across thread counts"
    );

    let exposition = MetricsSnapshot::from_report(&RunReport::from_events(serial)).render();
    assert!(exposition.contains("resilience_objective_evals_total"));
    assert_eq!(
        exposition,
        MetricsSnapshot::from_report(&RunReport::from_events(fixed2)).render(),
        "metrics exposition diverged across thread counts"
    );
}

/// The aggregated report accounts for real solver work: every family
/// span completes, objective evaluations were counted, and the JSON
/// document is NaN-free.
#[test]
fn ranking_report_accounts_for_solver_work() {
    let events = traced_ranking(Parallelism::Serial);
    let report = RunReport::from_events(events);
    assert_eq!(report.families.len(), families().len());
    for fam in &report.families {
        assert_eq!(fam.fits_started, 1, "{}", fam.name);
        assert_eq!(fam.fits_completed, 1, "{}", fam.name);
        assert!(fam.evaluations > 0, "{}", fam.name);
        assert!(fam.best_sse.is_some(), "{}", fam.name);
    }
    assert!(report.counter(CounterId::ObjectiveEvals) > 0);
    let json = report.to_json();
    assert!(!json.contains("NaN") && !json.contains("nan"), "{json}");
}

/// A degraded run — a family whose fit panics — still yields a parseable
/// log and a report whose zero-completed family renders without NaN
/// (satellite: division-by-zero guard on per-family rates).
#[test]
fn degraded_run_report_is_nan_free() {
    use resilience_core::model::ResilienceModel;
    use resilience_core::CoreError;
    use resilience_data::PerformanceSeries;

    struct PanickingFamily;
    impl ModelFamily for PanickingFamily {
        fn name(&self) -> &'static str {
            "Panicking"
        }
        fn n_params(&self) -> usize {
            1
        }
        fn internal_to_params(&self, internal: &[f64]) -> Vec<f64> {
            internal.to_vec()
        }
        fn params_to_internal(&self, params: &[f64]) -> Result<Vec<f64>, CoreError> {
            Ok(params.to_vec())
        }
        fn predict_params_into(&self, _params: &[f64], _ts: &[f64], _out: &mut [f64]) -> bool {
            panic!("injected failure");
        }
        fn build(&self, _params: &[f64]) -> Result<Box<dyn ResilienceModel>, CoreError> {
            Err(CoreError::params("Panicking", "never buildable"))
        }
        fn initial_guesses(&self, _series: &PerformanceSeries) -> Vec<Vec<f64>> {
            vec![vec![1.0]]
        }
    }

    // Silence the injected panic's backtrace, then restore the hook so
    // other tests in this binary report normally.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let series = Recession::R1990_93.payroll_index();
    let panicking = PanickingFamily;
    let fams: Vec<&dyn ModelFamily> = vec![&QuadraticFamily, &panicking];
    let recorder = Arc::new(RecordingObserver::new());
    let ranking = rank_models_supervised(
        &fams,
        &series,
        &FitConfig::default(),
        &ExecPolicy::default(),
        &Control::unbounded().observe(recorder.clone()),
    )
    .expect("healthy family survives");
    std::panic::set_hook(prev);
    assert!(ranking.degraded);

    let events = recorder.take();
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::WorkerPanic { index: 1, .. })));
    let text = to_jsonl(&events);
    let report = RunReport::from_events(parse_log(&text).expect("degraded log parses"));
    let failed = report
        .families
        .iter()
        .find(|f| f.name == "Panicking")
        .expect("failed family has a report row");
    assert_eq!(failed.fits_completed, 0);
    assert_eq!(failed.panics, 1);
    // Zero completed fits: the rate is typed as absent, never 0/0.
    assert_eq!(failed.convergence_rate(), None);
    // The fit *started* (the span opened before the panic), so the
    // per-start mean is a real 0, not a division by zero.
    assert_eq!(failed.fits_started, 1);
    assert_eq!(failed.mean_evals_per_fit(), Some(0.0));
    for doc in [report.to_json(), report.render_table()] {
        assert!(!doc.contains("NaN"), "{doc}");
    }
}
