//! Scenario-engine contract tests: bit-identity of the seven recession
//! series against their pre-refactor bytes, determinism of the Poisson
//! event process across runs and thread schedules, and the empirical
//! statistics of realized event streams.
//!
//! The bit patterns in [`golden`] were captured from the generator as it
//! existed before the scenario grammar replaced `CurveSpec`/`Dip`
//! (commit a1d9e6e): any change to the arithmetic of
//! `ScenarioSpec::generate`, `Shock::loss_at`, or the noise stream shows
//! up here as a hard failure, not a tolerance drift.

use resilience_core::fit::FitConfig;
use resilience_core::model::ModelFamily;
use resilience_core::runtime::{rank_models_supervised, Control, ExecPolicy};
use resilience_data::recessions::Recession;
use resilience_data::scenario::{catalog, Drift, EventProcess, Noise, ScenarioSpec, ShapeKind};
use resilience_obs::{replay, Event, JsonlObserver, RecordingObserver};
use resilience_optim::Parallelism;
use std::sync::Arc;

/// Pre-refactor f64 bit patterns of the seven payroll series.
mod golden {
    /// 1974-76.
    #[rustfmt::skip]
    pub const R1974_76: [u64; 48] = [
        0x3FF0000000000000, 0x3FF005A94D1EEC34, 0x3FF007833C971A8D, 0x3FF00682A862CC92,
        0x3FF007333F241FF2, 0x3FEFF73DC2DDDF12, 0x3FEFEA852466C77B, 0x3FEFCCD4917B82B8,
        0x3FEFB5D2A383751F, 0x3FEF9A690796AA45, 0x3FEF8023794D57FE, 0x3FEF63040C6F13F6,
        0x3FEF3FD7B0415F5D, 0x3FEF2A6EC3F05647, 0x3FEF25413CF1430F, 0x3FEF17D0C5A066D2,
        0x3FEF1EE084B25B1A, 0x3FEF70EB68BCCC81, 0x3FEFAD2016E90DF3, 0x3FEFDDB493B5210C,
        0x3FF00200DB759C65, 0x3FF01BB70B8A4495, 0x3FF02CC3FB3DF146, 0x3FF04248DF233C46,
        0x3FF04C159D225B92, 0x3FF058451E1A037A, 0x3FF068FABA34C5F0, 0x3FF0710787EE9901,
        0x3FF07A3BAB43CF68, 0x3FF086117FFDB470, 0x3FF0889B4E2E1987, 0x3FF09420C209F650,
        0x3FF09B1F05CC9678, 0x3FF0A5FB92BADD0F, 0x3FF0A9AD3DEA99D4, 0x3FF0B2F10128C806,
        0x3FF0B86B2EFDA207, 0x3FF0BAF6EA324BF8, 0x3FF0C1ACFC7E534D, 0x3FF0C7603FCF44D9,
        0x3FF0D195783BEAA2, 0x3FF0D8C34973D314, 0x3FF0D69AF2DD566A, 0x3FF0DE2212A5C831,
        0x3FF0E520DE3153FB, 0x3FF0EAE29CFA3A6B, 0x3FF0F0DC862B6EF4, 0x3FF0F4CC15AD3F4C,
    ];

    /// 1980.
    #[rustfmt::skip]
    pub const R1980: [u64; 48] = [
        0x3FF0000000000000, 0x3FEFF6FF2E3B2361, 0x3FEFCCFDDF814622, 0x3FEF8E18289DDD7B,
        0x3FEF558F20116A40, 0x3FEF1FD4B087E500, 0x3FEF11607F1ABF6F, 0x3FEF6A605E980A4B,
        0x3FEFA800C8B6CBD8, 0x3FEFD50E3AB96E1E, 0x3FEFE95C936A50FF, 0x3FEFEEF11B7F969B,
        0x3FEFFE5E3752E50F, 0x3FEFFDE364C3728A, 0x3FF0045830B989D0, 0x3FF007120B3C3A80,
        0x3FF00201E37407AC, 0x3FEFE57B3FEE44B0, 0x3FEFE098FDE53049, 0x3FEFB6B0D7936B6C,
        0x3FEF931C703A61F7, 0x3FEF78DB18C722AB, 0x3FEF5900443EE74F, 0x3FEF3B0AECEA6090,
        0x3FEF23256D7B030D, 0x3FEF1356684D47FF, 0x3FEF0D080C90FF43, 0x3FEF507826AF4B3F,
        0x3FEF7434838DED83, 0x3FEFA1D43968A84A, 0x3FEFBE73E94F15E2, 0x3FEFCFE911A3DD30,
        0x3FEFE314C51E164C, 0x3FEFEE56F45261EF, 0x3FEFF7751ECADCF7, 0x3FF000C4DF248865,
        0x3FF007D2C81BFAF7, 0x3FF005AA2C420088, 0x3FF0087F9CDD7A8C, 0x3FF00C85B09975BD,
        0x3FF00F5F7173EA05, 0x3FF00D63C77C2F08, 0x3FF01184EC1F1874, 0x3FF013C168A71443,
        0x3FF00F886F87A213, 0x3FF012D3E3D0491E, 0x3FF01590AA4414CB, 0x3FF0135A57E4BC55,
    ];

    /// 1981-83.
    #[rustfmt::skip]
    pub const R1981_83: [u64; 48] = [
        0x3FF0000000000000, 0x3FF00D1B35A9B454, 0x3FF00C47C638A329, 0x3FF012128C4D0559,
        0x3FF00FE2D2FAB083, 0x3FF00FA2D7D1542A, 0x3FF005BD1B7757C7, 0x3FEFF43A0892F301,
        0x3FEFE4849CB29D3F, 0x3FEFC304ABC40909, 0x3FEF937E8CB57392, 0x3FEF722C7EA3F819,
        0x3FEF44CF62CFE0D6, 0x3FEF360D3579E7A3, 0x3FEF13F0804B14BD, 0x3FEF0683558027A8,
        0x3FEEFE0E3E85AEEB, 0x3FEEFE909049428C, 0x3FEF5E81C425D96F, 0x3FEFB0801454E3D3,
        0x3FEFF555CE69D5A9, 0x3FF019A1724C9847, 0x3FF033532E22D8F9, 0x3FF053F474124A25,
        0x3FF06E61AD0CFE01, 0x3FF07D00F75EC955, 0x3FF09097301F96C1, 0x3FF0A5923F0CACE1,
        0x3FF0BA71339CD452, 0x3FF0C1F18CB04CB2, 0x3FF0D3237F8CAACC, 0x3FF0E05A5D1842CC,
        0x3FF0EC31110ED982, 0x3FF0FB31EF95BC79, 0x3FF103F8BFB1AE4D, 0x3FF1136811DE0A8E,
        0x3FF11AAD123896EE, 0x3FF12435BF100F47, 0x3FF1332CA18FD629, 0x3FF1378DEFD5CC61,
        0x3FF14052BE911961, 0x3FF14E4428F27ABD, 0x3FF150A2DE5F2ABA, 0x3FF15E2EBED04A94,
        0x3FF169C483F8908B, 0x3FF170C67CA6EF93, 0x3FF179B31D6AB2CA, 0x3FF180B457BF1466,
    ];

    /// 1990-93.
    #[rustfmt::skip]
    pub const R1990_93: [u64; 48] = [
        0x3FF0000000000000, 0x3FF002FD398964FC, 0x3FEFFEF0A8D1B97A, 0x3FEFE85E52B55F34,
        0x3FEFE1B3C84B21EF, 0x3FEFDCBB829F9CCB, 0x3FEFC10FC1AEFCAD, 0x3FEFB0D702DDE5BF,
        0x3FEFAC22C508CB14, 0x3FEF9D008D76056F, 0x3FEF95028E8DDA12, 0x3FEF94EF0A2D2F6D,
        0x3FEFA681FD544D01, 0x3FEFA3AF16414A11, 0x3FEFB06710FFAC06, 0x3FEFB734B6081CA9,
        0x3FEFC0024EC99DAD, 0x3FEFCBC3103C3DBF, 0x3FEFDEAFF769934F, 0x3FEFEBD18492F7C1,
        0x3FEFF2B185B2D33A, 0x3FF002DC6BD2F55C, 0x3FF008ED36FD4FC5, 0x3FF013F5D193A8DD,
        0x3FF0168D24BEF1EC, 0x3FF01E79684F9656, 0x3FF0239CCC324D1A, 0x3FF02D461E94EABF,
        0x3FF0329625083BCE, 0x3FF03C0CF7919578, 0x3FF04AFC6DD47D7C, 0x3FF04B1EF5AB47AD,
        0x3FF0513886EC9726, 0x3FF056632477FB95, 0x3FF060EC23FB0F62, 0x3FF064EDFE172BA3,
        0x3FF06A84C29DDFB2, 0x3FF06FB5D4CD3D29, 0x3FF075262949DB28, 0x3FF0772B6A4A4B6A,
        0x3FF07DC1792E31ED, 0x3FF08055A4EEB187, 0x3FF084C909765644, 0x3FF0866CDF859429,
        0x3FF08797E5D9CCE5, 0x3FF08A442CD7D044, 0x3FF08F2F4780E544, 0x3FF0914DD68F491D,
    ];

    /// 2001-05.
    #[rustfmt::skip]
    pub const R2001_05: [u64; 48] = [
        0x3FF0000000000000, 0x3FEFFEAC24BC00C5, 0x3FEFF8F539822925, 0x3FEFF3D96CCC4FAD,
        0x3FEFFB69476CC8CB, 0x3FEFF2F52FCB5D20, 0x3FEFF2E904D808F8, 0x3FEFEA65955A2AA4,
        0x3FEFDDA0DFFBBB7C, 0x3FEFD7149D9A1574, 0x3FEFCFC0393D49E6, 0x3FEFC41F333BC4B4,
        0x3FEFBCEA9C1A5FC2, 0x3FEFB17D665C1E10, 0x3FEFAAD4E03B66F8, 0x3FEFA536E1DC69A2,
        0x3FEF9D92253A31A2, 0x3FEF88381CCADD79, 0x3FEF86BD42D7FF77, 0x3FEF6E91CC0B7131,
        0x3FEF73E0BB5067E3, 0x3FEF685117402C18, 0x3FEF6A53F8DB90E1, 0x3FEF6089B33DBAD3,
        0x3FEF5B25E5227828, 0x3FEF5B3E46CB5A05, 0x3FEF586973B00FBA, 0x3FEF5727ED3D7017,
        0x3FEF5A3D0C6B85A4, 0x3FEF5A0E4A5E91AC, 0x3FEF5FBFB418B0DF, 0x3FEF6A2E44738441,
        0x3FEF6F82BF16D44D, 0x3FEF7A348E6A5B86, 0x3FEF886CAE10E411, 0x3FEF9211C1AB4CD5,
        0x3FEFA0BDDDAC3B88, 0x3FEFB70D2E960E22, 0x3FEFC27D40815EB4, 0x3FEFCC032CD1BB86,
        0x3FEFDE12DDE142D5, 0x3FEFF32660DF2844, 0x3FF002986DB0F7A3, 0x3FF00ACF4F12E3FD,
        0x3FF00B9302CA1B8D, 0x3FF019675A563DA2, 0x3FF01D1EC8A1DE04, 0x3FF024A392EC4E28,
    ];

    /// 2007-09.
    #[rustfmt::skip]
    pub const R2007_09: [u64; 48] = [
        0x3FF0000000000000, 0x3FEFFCCF44A55046, 0x3FEFF76AC5D85D12, 0x3FEFFD9172CFD7E0,
        0x3FEFEAC9A281F0CC, 0x3FEFDF375266B93B, 0x3FEFC07D51E91B37, 0x3FEFAAA283A71838,
        0x3FEF987847946E66, 0x3FEF6A6157406F27, 0x3FEF5008FA73E915, 0x3FEF317F2169172E,
        0x3FEF0E0100D0B521, 0x3FEEE4BFA7E55B61, 0x3FEEBC9FF3A58E86, 0x3FEE9899B74EAD1F,
        0x3FEE6E2706110A11, 0x3FEE45807F2BFEE1, 0x3FEE2EFA6561BDE4, 0x3FEE0652A792C5FA,
        0x3FEDF911C8132EC3, 0x3FEDDC288C75CFC6, 0x3FEDC32C4A32EFDE, 0x3FEDB878963C9A52,
        0x3FEDA94C62A7A53D, 0x3FEDB28E7B9A37F7, 0x3FEDB1BED8D53F7F, 0x3FEDAB0896BD6783,
        0x3FEDB6911C2FC0C1, 0x3FEDBED4D7922D71, 0x3FEDC0B8E5106ABD, 0x3FEDC7D084A9D17D,
        0x3FEDC7E36D1E069E, 0x3FEDD88D6A62E088, 0x3FEDDFBF418B24D3, 0x3FEDE961600507D2,
        0x3FEDFBCEBDA1DE43, 0x3FEE08CB18513324, 0x3FEE0E791F05DED7, 0x3FEE1B2BFEF05817,
        0x3FEE2CF86EC65E66, 0x3FEE4131EEF87A5C, 0x3FEE479FBF409FB0, 0x3FEE501F34A68552,
        0x3FEE66796175004D, 0x3FEE7969F70CD6A5, 0x3FEE899CFE5DC7D9, 0x3FEE998CAB51E4F7,
    ];

    /// 2020-21.
    #[rustfmt::skip]
    pub const R2020_21: [u64; 24] = [
        0x3FF0000000000000, 0x3FEFD59EA256CB5A, 0x3FEB48A59507453E, 0x3FEC771E202607AB,
        0x3FED134B7A8F6B3A, 0x3FED9129C99BC344, 0x3FEDCFF05EBAFF0B, 0x3FEE0EE7ECD53FA7,
        0x3FEE22FC09CFF043, 0x3FEE2CDE530F832D, 0x3FEE3BF41DBBF0A5, 0x3FEE4AB4D94DE0FE,
        0x3FEE4EA44D012E7E, 0x3FEE594294D20D74, 0x3FEE49048DBB667D, 0x3FEE526755EDC8BA,
        0x3FEE64FDDFE1FBE1, 0x3FEE70554EA8989C, 0x3FEE654A1F5D7368, 0x3FEE6E0D202B46F6,
        0x3FEE7500C63D670E, 0x3FEE7AEF2EAE60EA, 0x3FEE747ACB31CFFE, 0x3FEE88AAC576216F,
    ];

    /// Pre-refactor FNV-1a hashes (offset 0xcbf29ce484222325, prime
    /// 0x100000001b3, over the little-endian bytes of each value's bits)
    /// of the six canonical `ShapeKind` series at `(n = 48, seed = 42)`.
    pub const SHAPE_HASHES: [(&str, u64); 6] = [
        ("V", 0x5987B2AA73BECDDA),
        ("U", 0x347F015D85873BF3),
        ("W", 0x031C867EBE472237),
        ("L", 0xFEC92D4CDE05312E),
        ("J", 0x333747ECB93689F4),
        ("K", 0x038DD005638F25DD),
    ];
}

fn bits_of(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

fn fnv1a(values: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for b in v.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[test]
fn seven_recessions_are_bit_identical_to_pre_refactor_output() {
    let expected: [(Recession, &[u64]); 7] = [
        (Recession::R1974_76, &golden::R1974_76),
        (Recession::R1980, &golden::R1980),
        (Recession::R1981_83, &golden::R1981_83),
        (Recession::R1990_93, &golden::R1990_93),
        (Recession::R2001_05, &golden::R2001_05),
        (Recession::R2007_09, &golden::R2007_09),
        (Recession::R2020_21, &golden::R2020_21),
    ];
    for (recession, golden_bits) in expected {
        let series = recession.payroll_index();
        assert_eq!(
            bits_of(series.values()),
            golden_bits,
            "{recession}: series bits drifted from the pre-refactor golden capture"
        );
    }
}

#[test]
fn canonical_shapes_are_bit_identical_to_pre_refactor_output() {
    for (label, expected_hash) in golden::SHAPE_HASHES {
        let kind = ShapeKind::ALL
            .into_iter()
            .find(|k| k.to_string() == label)
            .expect("shape label");
        let series = kind.scenario(48, 42).generate(label).unwrap();
        assert_eq!(
            fnv1a(series.values()),
            expected_hash,
            "shape {label}: series hash drifted from the pre-refactor golden capture"
        );
    }
}

fn poisson_scenario() -> ScenarioSpec {
    ScenarioSpec {
        n: 240,
        shocks: Vec::new(),
        events: Some(EventProcess {
            outage_rate: 0.06,
            mean_restore: 4.0,
            mean_depth: 0.06,
            max_depth: 0.25,
            seed: 0xD0B50,
            max_events: EventProcess::DEFAULT_MAX_EVENTS,
        }),
        drift: Drift::None,
        noise: Noise::None,
        floor: Some(0.0),
    }
}

#[test]
fn poisson_scenario_regenerates_bit_identically() {
    let spec = poisson_scenario();
    let a = spec.generate("a").unwrap();
    let b = spec.generate("b").unwrap();
    assert_eq!(bits_of(a.values()), bits_of(b.values()));
}

#[test]
fn poisson_realization_is_identical_across_spawned_threads() {
    // Counter-derived streams make the realization a pure function of
    // (spec, horizon): racing many threads over the same spec must yield
    // byte-identical event lists and series regardless of schedule.
    let spec = poisson_scenario();
    let reference = bits_of(spec.generate("ref").unwrap().values());
    let events_reference = spec.events.unwrap().realize(239.0).unwrap();
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let spec = spec.clone();
            std::thread::spawn(move || {
                let series = spec.generate(format!("t{i}")).unwrap();
                let events = spec.events.unwrap().realize(239.0).unwrap();
                (bits_of(series.values()), events)
            })
        })
        .collect();
    for handle in handles {
        let (bits, events) = handle.join().unwrap();
        assert_eq!(bits, reference);
        assert_eq!(events, events_reference);
    }
}

#[test]
fn poisson_empirical_rate_matches_configured_rate() {
    // Over a long horizon the realized event count concentrates around
    // rate × horizon (Poisson: sd = sqrt(mean)); 5 sigma of slack keeps
    // the deterministic check meaningful without being seed-brittle.
    let horizon = 20_000.0;
    for seed in [1u64, 77, 2024] {
        let process = EventProcess {
            outage_rate: 0.05,
            mean_restore: 3.0,
            mean_depth: 0.05,
            max_depth: 0.2,
            seed,
            max_events: 8192,
        };
        let events = process.realize(horizon).unwrap();
        let expected = process.outage_rate * horizon; // 1000
        let sigma = expected.sqrt();
        let count = events.len() as f64;
        assert!(
            (count - expected).abs() < 5.0 * sigma,
            "seed {seed}: {count} events vs expected {expected} ± {sigma:.1}"
        );
    }
}

#[test]
fn poisson_series_has_no_nan_or_negative_values() {
    for seed in [3u64, 99, 0xBEEF] {
        let mut spec = poisson_scenario();
        if let Some(events) = &mut spec.events {
            events.seed = seed;
            // Dense, deep outages: the floor must absorb any stack-up.
            events.outage_rate = 0.5;
            events.mean_depth = 0.4;
            events.max_depth = 1.0;
        }
        let series = spec.generate(format!("dense-{seed}")).unwrap();
        for (t, v) in series.iter() {
            assert!(v.is_finite(), "seed {seed} t={t}: non-finite value");
            assert!(v >= 0.0, "seed {seed} t={t}: negative value {v}");
        }
    }
}

/// Encodes events exactly as the file sink would: one JSON line each.
fn to_jsonl(events: &[Event]) -> String {
    let sink = JsonlObserver::new(Vec::new());
    replay(events, &sink);
    String::from_utf8(sink.into_inner()).expect("JSONL is UTF-8")
}

/// Renders a supervised ranking's full observer event log as JSONL.
fn traced_ranking_log(spec: &ScenarioSpec, parallelism: Parallelism) -> (Vec<u64>, String) {
    let series = spec.generate("poisson-events").unwrap();
    let families: Vec<&dyn ModelFamily> = vec![
        &resilience_core::bathtub::QuadraticFamily,
        &resilience_core::bathtub::CompetingRisksFamily,
    ];
    let config = FitConfig {
        parallelism,
        ..FitConfig::default()
    };
    let recorder = Arc::new(RecordingObserver::new());
    rank_models_supervised(
        &families,
        &series,
        &config,
        &ExecPolicy::default(),
        &Control::unbounded().observe(recorder.clone()),
    )
    .unwrap();
    (bits_of(series.values()), to_jsonl(&recorder.take()))
}

#[test]
fn poisson_scenario_serial_vs_fixed4_yields_identical_series_and_obs_logs() {
    // The acceptance criterion of the scenario-engine refactor: a
    // stochastic-event scenario consumed under Serial and Fixed(4)
    // parallelism produces byte-identical series AND byte-identical
    // observability event logs.
    let spec = poisson_scenario();
    let (serial_bits, serial_log) = traced_ranking_log(&spec, Parallelism::Serial);
    let (fixed4_bits, fixed4_log) = traced_ranking_log(&spec, Parallelism::Fixed(4));
    assert_eq!(serial_bits, fixed4_bits, "series bits differ");
    assert!(!serial_log.is_empty());
    assert_eq!(serial_log, fixed4_log, "obs JSONL event logs differ");
}

#[test]
fn canonical_set_covers_shapes_and_stories() {
    let set = catalog::canonical_set(42);
    let names: Vec<&str> = set.iter().map(|(n, _)| n.as_str()).collect();
    for expected in [
        "shape-V",
        "shape-U",
        "shape-W",
        "shape-L",
        "shape-J",
        "shape-K",
        "step-outage",
        "double-dip",
        "slow-burn",
    ] {
        assert!(names.contains(&expected), "missing {expected} in {names:?}");
    }
}
