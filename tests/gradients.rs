//! Gradient checks for the analytic Jacobians (DESIGN.md §11).
//!
//! Every family that implements
//! [`ModelFamily::predict_jacobian_into`] is compared against central
//! differences of the full internal → external → predict chain at many
//! randomized (seeded) feasible internal points, so a sign slip or a
//! missing chain-rule factor in any hand-derived partial fails loudly
//! with the offending case in the message. The batched SSE kernels are
//! held to the stricter standard the fit engine relies on: bit-for-bit
//! agreement with the scalar objective.

use resilience_core::bathtub::{CompetingRisksFamily, QuadraticFamily};
use resilience_core::mixture::MixtureFamily;
use resilience_core::model::ModelFamily;
use resilience_math::linalg::Matrix;
use resilience_math::sum::sum_squared_diff;
use resilience_stats::XorShift64;

const CASES: usize = 40;

/// Central-difference step: `eps^(1/3)` balances truncation against
/// round-off for second-order differences (same rule as the optimizer's
/// own `central_gradient`).
fn fd_step(u: f64) -> f64 {
    f64::EPSILON.cbrt() * (1.0 + u.abs())
}

fn uniform(rng: &mut XorShift64, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.next_f64()
}

/// Evaluation grid: monthly samples over a three-year window, matching
/// the recession series' scale.
fn time_grid() -> Vec<f64> {
    (0..=36).map(f64::from).collect()
}

/// Predicts through the same chain the optimizer differentiates:
/// internal point → external parameters → curve values.
fn predict_internal(family: &dyn ModelFamily, internal: &[f64], ts: &[f64], out: &mut [f64]) {
    let n = family.n_params();
    let mut params = vec![0.0; n];
    family.internal_to_params_into(internal, &mut params);
    assert!(
        family.predict_params_into(&params, ts, out),
        "{}: infeasible at internal {internal:?}",
        family.name()
    );
}

/// Checks one family's analytic Jacobian against central differences at
/// `CASES` internal points drawn by `draw`.
fn check_family(family: &dyn ModelFamily, seed: u64, draw: impl Fn(&mut XorShift64) -> Vec<f64>) {
    let ts = time_grid();
    let n = family.n_params();
    let mut rng = XorShift64::new(seed);
    let mut params = vec![0.0; n];
    let mut jac = Matrix::zeros(ts.len(), n);
    let mut plus = vec![0.0; ts.len()];
    let mut minus = vec![0.0; ts.len()];

    for case in 0..CASES {
        let internal = draw(&mut rng);
        family.internal_to_params_into(&internal, &mut params);
        assert!(
            family.predict_jacobian_into(&internal, &params, &ts, &mut jac),
            "{}: no analytic Jacobian at case {case}",
            family.name()
        );

        for j in 0..n {
            let h = fd_step(internal[j]);
            let mut probe = internal.clone();
            probe[j] = internal[j] + h;
            predict_internal(family, &probe, &ts, &mut plus);
            probe[j] = internal[j] - h;
            predict_internal(family, &probe, &ts, &mut minus);

            for (i, &t) in ts.iter().enumerate() {
                let fd = (plus[i] - minus[i]) / (2.0 * h);
                let analytic = jac[(i, j)];
                let tol = 5e-6 * (1.0 + analytic.abs().max(fd.abs()));
                assert!(
                    (analytic - fd).abs() <= tol,
                    "{} case {case} ∂P/∂u{j} at t={t}: analytic {analytic} vs fd {fd} \
                     (internal {internal:?})",
                    family.name()
                );
            }
        }
    }
}

/// Checks one family's batched SSE kernel bit-for-bit against the scalar
/// objective at `CASES` internal points (batched together, so chunk
/// boundaries and ragged tails are exercised).
fn check_batch(family: &dyn ModelFamily, seed: u64, draw: impl Fn(&mut XorShift64) -> Vec<f64>) {
    let ts = time_grid();
    // A synthetic observation series with a dip, as the objective sees.
    let ys: Vec<f64> = ts
        .iter()
        .map(|&t| 1.0 - 0.04 * (-((t - 10.0) / 6.0) * ((t - 10.0) / 6.0)).exp())
        .collect();
    let n = family.n_params();
    let mut rng = XorShift64::new(seed);

    let points: Vec<Vec<f64>> = (0..CASES).map(|_| draw(&mut rng)).collect();
    let internals: Vec<f64> = points.iter().flatten().copied().collect();
    let mut batched = vec![0.0; CASES];
    assert!(
        family.sse_batch_into(&internals, &ts, &ys, &mut batched),
        "{}: no batched SSE kernel",
        family.name()
    );

    let mut params = vec![0.0; n];
    let mut pred = vec![0.0; ts.len()];
    for (case, internal) in points.iter().enumerate() {
        family.internal_to_params_into(internal, &mut params);
        assert!(family.predict_params_into(&params, &ts, &mut pred));
        let scalar = sum_squared_diff(&ys, &pred);
        assert_eq!(
            batched[case].to_bits(),
            scalar.to_bits(),
            "{} case {case}: batched {} vs scalar {scalar} (internal {internal:?})",
            family.name(),
            batched[case]
        );
    }
}

/// Quadratic internal points, kept away from the logistic clamp at
/// `σ(u1) ∈ [1e-9, 1 − 1e-9]` where the analytic derivative is
/// (correctly) zero but a finite difference straddles the kink.
fn quadratic_point(rng: &mut XorShift64) -> Vec<f64> {
    vec![
        uniform(rng, -2.0, 2.0),  // ln α
        uniform(rng, -4.0, 4.0),  // logit s
        uniform(rng, -8.0, -2.0), // ln γ
    ]
}

fn competing_risks_point(rng: &mut XorShift64) -> Vec<f64> {
    (0..3).map(|_| uniform(rng, -4.0, 1.0)).collect()
}

/// Mixture internal points: log of every positive parameter. Rates stay
/// in `[e^-4, 1]`, Weibull shapes in `[e^-0.5, e^1.2]`, scales in
/// `[1, e^3.5]`, and the trend's β in `[e^-2, e]`.
fn mixture_point(family: &MixtureFamily, rng: &mut XorShift64) -> Vec<f64> {
    let n = family.n_params();
    let mut u = Vec::with_capacity(n);
    for kind in [family.f1, family.f2] {
        match kind.n_params() {
            1 => u.push(uniform(rng, -4.0, 0.0)), // ln rate
            _ => {
                u.push(uniform(rng, -0.5, 1.2)); // ln shape
                u.push(uniform(rng, 0.0, 3.5)); // ln scale
            }
        }
    }
    u.push(uniform(rng, -2.0, 1.0)); // ln β
    u
}

#[test]
fn quadratic_jacobian_matches_central_differences() {
    check_family(&QuadraticFamily, 0xC0DE_0001, quadratic_point);
}

#[test]
fn competing_risks_jacobian_matches_central_differences() {
    check_family(&CompetingRisksFamily, 0xC0DE_0002, competing_risks_point);
}

#[test]
fn all_four_paper_mixture_jacobians_match_central_differences() {
    for (k, family) in MixtureFamily::paper_combinations().into_iter().enumerate() {
        check_family(&family, 0xC0DE_0010 + k as u64, |rng| {
            mixture_point(&family, rng)
        });
    }
}

#[test]
fn batched_sse_is_bit_identical_to_scalar_objective() {
    check_batch(&QuadraticFamily, 0xBA7C_0001, quadratic_point);
    check_batch(&CompetingRisksFamily, 0xBA7C_0002, competing_risks_point);
    for (k, family) in MixtureFamily::paper_combinations().into_iter().enumerate() {
        check_batch(&family, 0xBA7C_0010 + k as u64, |rng| {
            mixture_point(&family, rng)
        });
    }
}
