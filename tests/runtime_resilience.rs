//! Resilient-execution acceptance suite (DESIGN.md §9): deadlines turn
//! runaway fits into typed `TimedOut` errors, cancel tokens stop runs
//! from another thread, panicking families degrade a ranking instead of
//! poisoning it, and a checkpointed bootstrap resumes bit-identically.
//!
//! The hostile families here model real failure modes: an objective so
//! slow it effectively hangs (`SleepyFamily`) and a buggy family
//! implementation that panics (`PanickyFamily`).

// Sanctioned wall-clock: this suite *measures* that deadlines fire
// promptly; nothing here is a stored result (`clippy.toml` bans
// `Instant` in result paths).
#![allow(clippy::disallowed_types)]

use resilience_core::bathtub::QuadraticFamily;
use resilience_core::bootstrap::{bootstrap_band, bootstrap_band_checkpointed, BootstrapConfig};
use resilience_core::fit::{fit_least_squares_with, FitConfig};
use resilience_core::model::{ModelFamily, ResilienceModel};
use resilience_core::runtime::{rank_models_supervised, CancelToken, Control, ExecPolicy};
use resilience_core::selection::FailureKind;
use resilience_core::CoreError;
use resilience_data::recessions::Recession;
use resilience_data::PerformanceSeries;
use resilience_optim::Parallelism;
use std::time::{Duration, Instant};

/// A constant-curve family whose every objective evaluation sleeps: the
/// closest safe stand-in for an objective that hangs. Its fit can only
/// finish fast by hitting a cooperative cancellation point.
struct SleepyFamily {
    nap: Duration,
}

struct ConstantModel(f64);

impl ResilienceModel for ConstantModel {
    fn name(&self) -> &'static str {
        "Sleepy"
    }
    fn params(&self) -> Vec<f64> {
        vec![self.0]
    }
    fn predict(&self, _t: f64) -> f64 {
        self.0
    }
}

impl ModelFamily for SleepyFamily {
    fn name(&self) -> &'static str {
        "Sleepy"
    }
    fn n_params(&self) -> usize {
        1
    }
    fn internal_to_params(&self, internal: &[f64]) -> Vec<f64> {
        internal.to_vec()
    }
    fn params_to_internal(&self, params: &[f64]) -> Result<Vec<f64>, CoreError> {
        Ok(params.to_vec())
    }
    fn predict_params_into(&self, params: &[f64], _ts: &[f64], out: &mut [f64]) -> bool {
        std::thread::sleep(self.nap);
        out.fill(params[0]);
        true
    }
    fn build(&self, params: &[f64]) -> Result<Box<dyn ResilienceModel>, CoreError> {
        Ok(Box::new(ConstantModel(params[0])))
    }
    fn initial_guesses(&self, _series: &PerformanceSeries) -> Vec<Vec<f64>> {
        vec![vec![1.0]]
    }
}

/// A family whose objective panics: a buggy implementation that must be
/// isolated, never allowed to take down a multi-family run.
struct PanickyFamily;

impl ModelFamily for PanickyFamily {
    fn name(&self) -> &'static str {
        "Panicky"
    }
    fn n_params(&self) -> usize {
        1
    }
    fn internal_to_params(&self, internal: &[f64]) -> Vec<f64> {
        internal.to_vec()
    }
    fn params_to_internal(&self, params: &[f64]) -> Result<Vec<f64>, CoreError> {
        Ok(params.to_vec())
    }
    fn predict_params_into(&self, _params: &[f64], _ts: &[f64], _out: &mut [f64]) -> bool {
        panic!("injected panic in Panicky::predict_params_into");
    }
    fn build(&self, _params: &[f64]) -> Result<Box<dyn ResilienceModel>, CoreError> {
        Err(CoreError::params("Panicky", "never buildable"))
    }
    fn initial_guesses(&self, _series: &PerformanceSeries) -> Vec<Vec<f64>> {
        vec![vec![1.0]]
    }
}

/// A generous-but-finite optimizer budget: the fit should only ever end
/// via the control, not by exhausting iterations.
fn patient_config() -> FitConfig {
    let mut config = FitConfig {
        lm_polish: false,
        parallelism: Parallelism::Serial,
        ..FitConfig::default()
    };
    config.nelder_mead.max_iterations = 10_000_000;
    config
}

/// Acceptance: a hanging objective under a 50 ms deadline returns
/// `CoreError::TimedOut` — promptly, instead of running for hours.
#[test]
fn hanging_objective_times_out_under_a_50ms_deadline() {
    let series = Recession::R1990_93.payroll_index();
    let sleepy = SleepyFamily {
        nap: Duration::from_millis(20),
    };
    let started = Instant::now();
    let err = fit_least_squares_with(
        &sleepy,
        &series,
        &patient_config(),
        &Control::with_deadline(Duration::from_millis(50)),
    )
    .unwrap_err();
    let elapsed = started.elapsed();
    assert!(
        matches!(err, CoreError::TimedOut { what } if what == "fit_least_squares"),
        "expected a typed timeout, got {err}"
    );
    // Cooperative stop: within one iteration of the deadline. Very
    // generous bound so slow CI machines cannot flake it.
    assert!(elapsed < Duration::from_secs(5), "took {elapsed:?}");
}

/// A cancel token fired from another thread stops a running fit with a
/// typed `Cancelled` error.
#[test]
fn cancel_token_stops_a_running_fit_from_another_thread() {
    let series = Recession::R1990_93.payroll_index();
    let sleepy = SleepyFamily {
        nap: Duration::from_millis(5),
    };
    let token = CancelToken::new();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(25));
            token.cancel();
        })
    };
    let err = fit_least_squares_with(
        &sleepy,
        &series,
        &patient_config(),
        &Control::with_token(&token),
    )
    .unwrap_err();
    canceller.join().unwrap();
    assert!(
        matches!(err, CoreError::Cancelled { .. }),
        "expected a typed cancellation, got {err}"
    );
}

/// Acceptance: a panicking family yields a degraded ranking with the
/// surviving rows — the panic is isolated, classified, and reported.
#[test]
fn panicking_family_degrades_the_ranking_instead_of_poisoning_it() {
    // Silence the default panic hook for the injected panic; failures in
    // this test still fail it (the hook only controls printing).
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let series = Recession::R1990_93.payroll_index();
    let families: Vec<&dyn ModelFamily> = vec![&QuadraticFamily, &PanickyFamily];
    let outcome = rank_models_supervised(
        &families,
        &series,
        &FitConfig::default(),
        &ExecPolicy::default(),
        &Control::unbounded(),
    );
    std::panic::set_hook(hook);
    let ranking = outcome.unwrap();
    assert!(ranking.degraded);
    assert_eq!(ranking.rows.len(), 1);
    assert_eq!(ranking.rows[0].family_name, "Quadratic");
    assert!(ranking.rows[0].sse.is_finite());
    assert_eq!(ranking.failures.len(), 1);
    assert_eq!(ranking.failures[0].family_name, "Panicky");
    assert_eq!(ranking.failures[0].kind, FailureKind::Panicked);
    assert!(
        ranking.failures[0].reason.contains("injected panic"),
        "reason should carry the panic message: {}",
        ranking.failures[0].reason
    );
}

/// A per-family time budget converts one runaway family into a
/// `TimedOut` failure row while the healthy families rank normally.
#[test]
fn family_budget_times_out_the_slow_family_only() {
    let series = Recession::R1990_93.payroll_index();
    let sleepy = SleepyFamily {
        nap: Duration::from_millis(20),
    };
    let families: Vec<&dyn ModelFamily> = vec![&QuadraticFamily, &sleepy];
    let config = FitConfig {
        parallelism: Parallelism::Serial,
        ..FitConfig::default()
    };
    let policy = ExecPolicy {
        family_budget: Some(Duration::from_millis(50)),
        ..ExecPolicy::default()
    };
    let ranking =
        rank_models_supervised(&families, &series, &config, &policy, &Control::unbounded())
            .unwrap();
    assert!(ranking.degraded);
    assert_eq!(ranking.rows.len(), 1);
    assert_eq!(ranking.rows[0].family_name, "Quadratic");
    assert_eq!(ranking.failures.len(), 1);
    assert_eq!(ranking.failures[0].family_name, "Sleepy");
    assert_eq!(ranking.failures[0].kind, FailureKind::TimedOut);
}

/// Acceptance: a checkpointed-then-resumed bootstrap is bit-identical to
/// an uninterrupted run.
/// Satellite: checkpoint-resume under *cancellation* (the deadline
/// variant lives above). A cancelled call still completes its current
/// chunk (minimum-progress guarantee), parks a checkpoint, and a
/// resumed schedule is bit-identical to an uninterrupted run — client
/// disconnects in the future service layer must be free.
#[test]
fn checkpointed_bootstrap_resumes_bit_identically_after_cancellation() {
    let series = Recession::R1990_93.payroll_index();
    let cfg = BootstrapConfig {
        replicates: 40,
        parallelism: Parallelism::Fixed(1),
        ..BootstrapConfig::default()
    };
    let uninterrupted =
        bootstrap_band(&QuadraticFamily, &series, &FitConfig::default(), &cfg).unwrap();

    let mut checkpoint = None;
    let mut pauses = 0usize;
    let mut calls = 0usize;
    let resumed = loop {
        calls += 1;
        assert!(calls <= 10, "minimum-progress guarantee violated");
        // The token fires while the chunk is in flight (it is already
        // cancelled when the chunk starts — the stop check only runs
        // after the chunk, so this is the deterministic equivalent of a
        // mid-chunk cancellation).
        let token = CancelToken::new();
        token.cancel();
        let outcome = bootstrap_band_checkpointed(
            &QuadraticFamily,
            &series,
            &FitConfig::default(),
            &cfg,
            &mut checkpoint,
            &Control::with_token(&token),
        )
        .unwrap();
        match outcome {
            Some(band) => break band,
            None => {
                pauses += 1;
                assert!(checkpoint.is_some(), "a paused run must leave a checkpoint");
            }
        }
    };
    assert!(pauses >= 1, "the run should actually have been cancelled");
    assert!(checkpoint.is_none(), "completion must clear the checkpoint");
    assert_eq!(resumed, uninterrupted);
}

#[test]
fn checkpointed_bootstrap_resumes_bit_identically() {
    let series = Recession::R1990_93.payroll_index();
    // One worker → 32-replicate chunks: 40 replicates take two calls
    // under an expired deadline.
    let cfg = BootstrapConfig {
        replicates: 40,
        parallelism: Parallelism::Fixed(1),
        ..BootstrapConfig::default()
    };
    let uninterrupted =
        bootstrap_band(&QuadraticFamily, &series, &FitConfig::default(), &cfg).unwrap();

    let expired = Control::with_deadline(Duration::ZERO);
    let mut checkpoint = None;
    let mut calls = 0usize;
    let resumed = loop {
        calls += 1;
        assert!(calls <= 10, "minimum-progress guarantee violated");
        if let Some(band) = bootstrap_band_checkpointed(
            &QuadraticFamily,
            &series,
            &FitConfig::default(),
            &cfg,
            &mut checkpoint,
            &expired,
        )
        .unwrap()
        {
            break band;
        }
        assert!(checkpoint.is_some(), "a paused run must leave a checkpoint");
    };
    assert!(calls >= 2, "the run should actually have been interrupted");
    assert!(checkpoint.is_none(), "completion must clear the checkpoint");
    assert_eq!(resumed, uninterrupted);
}
