//! Fault-injection harness: every deliberately corrupted input —
//! hostile CSV rows, NaN/Inf values, non-monotone times, empty held-out
//! suffixes, NaN-returning objectives — must flow through the full
//! pipeline as a structured error or a documented fallback. Zero
//! panics, zero silent NaN/Inf in any public API return.
//!
//! The fault vocabulary lives in `resilience_data::fault`; this harness
//! drives it through parsing, series construction, fitting, selection,
//! evaluation, and the bootstrap.

use resilience_core::analysis::{evaluate_model, evaluate_models};
use resilience_core::bathtub::{CompetingRisksFamily, QuadraticFamily};
use resilience_core::fit::{fit_least_squares, FitConfig};
use resilience_core::model::{ModelFamily, ResilienceModel};
use resilience_core::selection::rank_models;
use resilience_core::validate::pmse_at;
use resilience_core::CoreError;
use resilience_data::csv::read_series;
use resilience_data::fault::{Fault, FaultError};
use resilience_data::recessions::Recession;
use resilience_data::scenario::catalog;
use resilience_data::PerformanceSeries;

/// A family whose curve is NaN everywhere: the worst-case objective.
struct NanObjectiveFamily;

impl ModelFamily for NanObjectiveFamily {
    fn name(&self) -> &'static str {
        "NaN-objective"
    }
    fn n_params(&self) -> usize {
        2
    }
    fn internal_to_params(&self, internal: &[f64]) -> Vec<f64> {
        internal.to_vec()
    }
    fn params_to_internal(&self, params: &[f64]) -> Result<Vec<f64>, CoreError> {
        Ok(params.to_vec())
    }
    fn predict_params_into(&self, _params: &[f64], _ts: &[f64], out: &mut [f64]) -> bool {
        out.fill(f64::NAN);
        true
    }
    fn build(&self, _params: &[f64]) -> Result<Box<dyn ResilienceModel>, CoreError> {
        struct NanModel;
        impl ResilienceModel for NanModel {
            fn name(&self) -> &'static str {
                "NaN-objective"
            }
            fn params(&self) -> Vec<f64> {
                vec![f64::NAN, f64::NAN]
            }
            fn predict(&self, _t: f64) -> f64 {
                f64::NAN
            }
        }
        Ok(Box::new(NanModel))
    }
    fn initial_guesses(&self, _series: &PerformanceSeries) -> Vec<Vec<f64>> {
        vec![vec![0.5, 0.5], vec![1.0, 2.0]]
    }
}

/// A family whose predictions overflow to ±∞: Inf instead of NaN.
struct ExplosiveFamily;

impl ModelFamily for ExplosiveFamily {
    fn name(&self) -> &'static str {
        "Explosive"
    }
    fn n_params(&self) -> usize {
        1
    }
    fn internal_to_params(&self, internal: &[f64]) -> Vec<f64> {
        internal.to_vec()
    }
    fn params_to_internal(&self, params: &[f64]) -> Result<Vec<f64>, CoreError> {
        Ok(params.to_vec())
    }
    fn predict_params_into(&self, _params: &[f64], _ts: &[f64], out: &mut [f64]) -> bool {
        out.fill(f64::INFINITY);
        true
    }
    fn build(&self, _params: &[f64]) -> Result<Box<dyn ResilienceModel>, CoreError> {
        Err(CoreError::params("Explosive", "never buildable"))
    }
    fn initial_guesses(&self, _series: &PerformanceSeries) -> Vec<Vec<f64>> {
        vec![vec![1.0]]
    }
}

/// Corrupt CSV documents: the parser rejects each with a typed error,
/// never a panic and never a series carrying NaN.
#[test]
fn corrupt_csv_yields_structured_errors() {
    for fault in Fault::ALL {
        let doc = fault.to_csv();
        let e = read_series(doc.as_bytes(), fault.label())
            .expect_err(&format!("{fault}: parser accepted corrupt CSV"));
        assert!(e.to_string().len() > 10, "{fault}: unhelpful error {e}");
    }
}

/// NaN/Inf values and broken time grids are rejected at the series
/// boundary, so no downstream layer ever sees them.
#[test]
fn numeric_faults_rejected_at_series_boundary() {
    for fault in Fault::ALL {
        let mut times: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let mut values = vec![1.0, 0.98, 0.96, 0.94, 0.95, 0.97, 0.99, 1.0];
        fault.inject(&mut times, &mut values).unwrap();
        let e = PerformanceSeries::new(fault.label(), times, values)
            .expect_err(&format!("{fault}: constructor accepted corrupt data"));
        assert!(e.to_string().len() > 10, "{fault}");
    }
}

/// The corrupt-input matrix over scenario-generated series: every fault
/// injected into a step-outage, double-dip, or slow-burn scenario curve
/// is caught at the series boundary — the scenario engine gives the
/// fault vocabulary an unbounded supply of victims, and none of them
/// open a hole in the validation layer.
#[test]
fn numeric_faults_rejected_on_scenario_series() {
    let scenarios = [
        ("step-outage", catalog::step_outage(7)),
        ("double-dip", catalog::double_dip(7)),
        ("slow-burn", catalog::slow_burn(7)),
    ];
    for (name, spec) in scenarios {
        let clean = spec.generate(name).expect("scenario generates");
        // The clean control must pass — otherwise the matrix proves
        // nothing.
        assert!(
            PerformanceSeries::new(name, clean.times().to_vec(), clean.values().to_vec()).is_ok(),
            "{name}: clean scenario series rejected"
        );
        for fault in Fault::ALL {
            let (times, values) = fault.corrupt_series(&clean).unwrap();
            let e = PerformanceSeries::new(fault.label(), times, values).expect_err(&format!(
                "{name}/{fault}: constructor accepted corrupt data"
            ));
            assert!(e.to_string().len() > 10, "{name}/{fault}");
        }
    }
}

/// A series shorter than the corruption window is a typed refusal
/// ([`FaultError::SeriesTooShort`]), never a silent no-op: a harness
/// that "corrupts" nothing would let robustness tests pass on clean
/// data.
#[test]
fn corruption_window_underflow_is_a_typed_error() {
    let short = PerformanceSeries::monthly("short", vec![1.0, 0.98]).unwrap();
    for fault in Fault::ALL {
        assert_eq!(
            fault.corrupt_series(&short),
            Err(FaultError::SeriesTooShort { len: 2, min: 3 }),
            "{fault}"
        );
    }
    // The boundary case: three points is the smallest corruptible series.
    let min = PerformanceSeries::monthly("min", vec![1.0, 0.98, 0.97]).unwrap();
    for fault in Fault::ALL {
        assert!(fault.corrupt_series(&min).is_ok(), "{fault}");
    }
}

/// Empty held-out suffixes: every entry point that consumes a split or
/// horizon rejects the degenerate geometry with a typed error.
#[test]
fn empty_holdout_suffix_is_rejected_everywhere() {
    let series = Recession::R1990_93.payroll_index();
    // A split keeping every point leaves an empty test suffix.
    assert!(series.split_at(series.len()).is_err());
    assert!(series.split_fraction(1.0).is_err());
    // Zero-holdout evaluation.
    assert!(evaluate_model(&QuadraticFamily, &series, 0, 0.05).is_err());
    // Slice-level PMSE over an empty test set.
    let fit = fit_least_squares(&QuadraticFamily, &series, &FitConfig::default()).unwrap();
    let e = pmse_at(fit.model.as_ref(), &[], &[]).unwrap_err();
    assert!(e.to_string().contains("empty test set"), "{e}");
}

/// A NaN-returning objective: fitting fails with a structured error (the
/// objective maps NaN curves to +∞, so every start is rejected), and the
/// family lands in `Ranking::failures` rather than poisoning the table.
#[test]
fn nan_objective_degrades_to_structured_errors() {
    let series = Recession::R1990_93.payroll_index();
    for family in [&NanObjectiveFamily as &dyn ModelFamily, &ExplosiveFamily] {
        let e = fit_least_squares(family, &series, &FitConfig::default())
            .expect_err("a non-finite objective must not produce a fit");
        assert!(e.to_string().len() > 10, "{}", family.name());
    }
    let families: Vec<&dyn ModelFamily> =
        vec![&QuadraticFamily, &NanObjectiveFamily, &ExplosiveFamily];
    let ranking = rank_models(&families, &series, &FitConfig::default()).unwrap();
    assert_eq!(ranking.rows.len(), 1);
    assert_eq!(ranking.rows[0].family_name, "Quadratic");
    assert_eq!(ranking.failures.len(), 2);
    for failure in &ranking.failures {
        assert!(!failure.reason.is_empty(), "{}", failure.family_name);
    }
    // Every ranked number is finite — the NaN families contributed none.
    for row in &ranking.rows {
        assert!(row.sse.is_finite());
        assert!(row.r2_adj.is_finite());
    }
}

/// End-to-end: the CSV → series → fit → evaluate pipeline either
/// succeeds with all-finite outputs or fails with a typed error, for
/// clean and mildly pathological (but parseable) inputs alike.
#[test]
fn pipeline_outputs_are_finite_or_typed_errors() {
    let docs: &[&str] = &[
        // Clean U-shaped curve.
        "time,value\n0,1.0\n1,0.99\n2,0.97\n3,0.95\n4,0.94\n5,0.95\n6,0.97\n7,0.99\n8,1.0\n9,1.01\n10,1.02\n11,1.02\n",
        // Constant series: fit may fail (SSY = 0 kills adjusted R²), but
        // only through a typed error.
        "time,value\n0,1\n1,1\n2,1\n3,1\n4,1\n5,1\n6,1\n7,1\n8,1\n9,1\n",
        // Monotone decline with no recovery.
        "time,value\n0,1.0\n1,0.98\n2,0.96\n3,0.94\n4,0.92\n5,0.90\n6,0.88\n7,0.86\n8,0.84\n9,0.82\n",
    ];
    for doc in docs {
        let series = read_series(doc.as_bytes(), "pipeline").expect("parseable document");
        let families: Vec<&dyn ModelFamily> = vec![&QuadraticFamily, &CompetingRisksFamily];
        for outcome in evaluate_models(&families, &series, 3, 0.05) {
            match outcome {
                Ok(eval) => {
                    assert!(eval.fit.sse.is_finite());
                    assert!(eval.fit.params.iter().all(|p| p.is_finite()));
                    for v in [
                        eval.gof.sse,
                        eval.gof.pmse,
                        eval.gof.r2_adj,
                        eval.gof.ec,
                        eval.gof.sigma,
                    ] {
                        assert!(v.is_finite(), "silent non-finite GoF value");
                    }
                }
                Err(e) => {
                    assert!(e.to_string().len() > 10, "unhelpful error: {e}");
                }
            }
        }
    }
}

/// Faulted series can never be smuggled into the fitting layer: the only
/// constructor-free path is the slice API, and the guard layer catches a
/// NaN escaping there.
#[test]
fn guard_layer_catches_nan_at_the_metric_boundary() {
    use resilience_core::metrics::relative_error;
    assert!(relative_error(f64::NAN, 1.0).is_err());
    assert!(relative_error(1.0, f64::INFINITY).is_err());
    // And guarded prediction at the model boundary.
    let series = Recession::R1990_93.payroll_index();
    let fit = fit_least_squares(&QuadraticFamily, &series, &FitConfig::default()).unwrap();
    assert!(resilience_core::guard::guarded_predict(fit.model.as_ref(), f64::NAN).is_err());
    assert!(resilience_core::guard::guarded_predict(fit.model.as_ref(), 5.0).is_ok());
}
