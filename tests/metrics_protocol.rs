//! Hand-computed reference tests for the interval-metric protocol behind
//! the paper's Tables II and IV: tiny series whose integrals can be done
//! on paper, checked against the implementation exactly.

use resilience_core::metrics::{
    actual_metric, integrate_series, predicted_metric, MetricContext, MetricKind,
};
use resilience_core::model::ResilienceModel;
use resilience_data::PerformanceSeries;

/// A constant model for hand-checkable predictions.
struct Constant(f64);

impl ResilienceModel for Constant {
    fn name(&self) -> &'static str {
        "Constant"
    }
    fn params(&self) -> Vec<f64> {
        vec![self.0]
    }
    fn predict(&self, _t: f64) -> f64 {
        self.0
    }
}

/// A linear model `P(t) = a + b·t`.
struct Linear {
    a: f64,
    b: f64,
}

impl ResilienceModel for Linear {
    fn name(&self) -> &'static str {
        "Linear"
    }
    fn params(&self) -> Vec<f64> {
        vec![self.a, self.b]
    }
    fn predict(&self, t: f64) -> f64 {
        self.a + self.b * t
    }
}

fn tiny_series() -> PerformanceSeries {
    // t: 0  1    2    3    4    5    6
    // P: 1  0.9  0.8  0.9  1.0  1.1  1.2   (trough at t = 2)
    PerformanceSeries::monthly("tiny", vec![1.0, 0.9, 0.8, 0.9, 1.0, 1.1, 1.2]).unwrap()
}

fn ctx() -> MetricContext {
    MetricContext {
        t_start: 4.0,
        t_end: 6.0,
        nominal: 1.0, // observed value at t = 4
        t_min: 2.0,
        t_full_start: 0.0,
        weight: 0.5,
    }
    .validated()
    .unwrap()
}

#[test]
fn integrate_series_hand_computed() {
    let s = tiny_series();
    // Full integral: trapezoids (1+0.9)/2 + (0.9+0.8)/2 + (0.8+0.9)/2 +
    // (0.9+1)/2 + (1+1.1)/2 + (1.1+1.2)/2 = 0.95+0.85+0.85+0.95+1.05+1.15
    // = 5.8.
    assert!((integrate_series(&s, 0.0, 6.0).unwrap() - 5.8).abs() < 1e-12);
    // Window [4, 6]: 1.05 + 1.15 = 2.2.
    assert!((integrate_series(&s, 4.0, 6.0).unwrap() - 2.2).abs() < 1e-12);
    // Fractional window [1.5, 2.5]: left half-segment mean P = (0.85+0.8)/2
    // = 0.825 over 0.5 → 0.4125; right: (0.8+0.85)/2 = 0.825 over 0.5 →
    // 0.4125; total 0.825.
    assert!((integrate_series(&s, 1.5, 2.5).unwrap() - 0.825).abs() < 1e-12);
}

#[test]
fn eq14_performance_preserved_hand_computed() {
    let v = actual_metric(&tiny_series(), MetricKind::PerformancePreserved, &ctx()).unwrap();
    assert!((v - 2.2).abs() < 1e-12);
}

#[test]
fn eq16_performance_lost_hand_computed() {
    // Nominal rectangle = 1.0·(6−4) = 2; lost = 2 − 2.2 = −0.2.
    let v = actual_metric(&tiny_series(), MetricKind::PerformanceLost, &ctx()).unwrap();
    assert!((v + 0.2).abs() < 1e-12);
}

#[test]
fn eq15_eq17_normalized_pair_hand_computed() {
    let p = actual_metric(
        &tiny_series(),
        MetricKind::NormalizedAveragePreserved,
        &ctx(),
    )
    .unwrap();
    let l = actual_metric(&tiny_series(), MetricKind::NormalizedAverageLost, &ctx()).unwrap();
    assert!((p - 1.1).abs() < 1e-12); // 2.2 / 2
    assert!((l + 0.1).abs() < 1e-12); // −0.2 / 2
}

#[test]
fn eq18_preserved_from_minimum_hand_computed() {
    // ∫ from t_min = 2 to 6: 0.85 + 0.95 + 1.05 + 1.15 = 4.0.
    // Rectangle below the minimum: P(2)·(6−2) = 0.8·4 = 3.2.
    let v = actual_metric(&tiny_series(), MetricKind::PreservedFromMinimum, &ctx()).unwrap();
    assert!((v - 0.8).abs() < 1e-12);
}

#[test]
fn eq19_eq20_averages_hand_computed() {
    let ap = actual_metric(&tiny_series(), MetricKind::AveragePreserved, &ctx()).unwrap();
    let al = actual_metric(&tiny_series(), MetricKind::AverageLost, &ctx()).unwrap();
    assert!((ap - 1.1).abs() < 1e-12); // 2.2 / 2
    assert!((al + 0.1).abs() < 1e-12); // −0.2 / 2
}

#[test]
fn eq21_weighted_before_after_hand_computed() {
    // Before: ∫₀² P = 0.95 + 0.85 = 1.8 over width 2 → 0.9.
    // After: ∫₂⁶ P = 4.0 over width 4 → 1.0.
    // α = 0.5: 0.5·0.9 + 0.5·1.0 = 0.95.
    let v = actual_metric(
        &tiny_series(),
        MetricKind::WeightedBeforeAfterMinimum,
        &ctx(),
    )
    .unwrap();
    assert!((v - 0.95).abs() < 1e-12);
}

#[test]
fn predicted_metrics_for_constant_model() {
    // P ≡ 0.9: preserved over [4, 6] = 1.8; lost = 2 − 1.8 = 0.2;
    // preserved-from-min = 0.9·4 − 0.9·4 = 0 (flat curve).
    let m = Constant(0.9);
    let c = ctx();
    assert!(
        (predicted_metric(&m, MetricKind::PerformancePreserved, &c).unwrap() - 1.8).abs() < 1e-9
    );
    assert!((predicted_metric(&m, MetricKind::PerformanceLost, &c).unwrap() - 0.2).abs() < 1e-9);
    assert!(
        predicted_metric(&m, MetricKind::PreservedFromMinimum, &c)
            .unwrap()
            .abs()
            < 1e-9
    );
    // Weighted: both halves average 0.9 → 0.9.
    assert!(
        (predicted_metric(&m, MetricKind::WeightedBeforeAfterMinimum, &c).unwrap() - 0.9).abs()
            < 1e-9
    );
}

#[test]
fn predicted_metrics_for_linear_model() {
    // P(t) = 0.8 + 0.05 t: over [4, 6], ∫ = 0.8·2 + 0.05·(36−16)/2 = 1.6 +
    // 0.5 = 2.1.
    let m = Linear { a: 0.8, b: 0.05 };
    let c = ctx();
    let preserved = predicted_metric(&m, MetricKind::PerformancePreserved, &c).unwrap();
    assert!((preserved - 2.1).abs() < 1e-9);
    // Preserved from minimum: over [2, 6], ∫ = 0.8·4 + 0.05·(36−4)/2 = 4.0;
    // P(2) = 0.9; 4.0 − 0.9·4 = 0.4.
    let pfm = predicted_metric(&m, MetricKind::PreservedFromMinimum, &c).unwrap();
    assert!((pfm - 0.4).abs() < 1e-9);
}

#[test]
fn relative_errors_between_hand_computed_values() {
    use resilience_core::metrics::relative_error;
    // Actual preserved 2.2, constant-model prediction 1.8: δ = 0.4/2.2.
    let d = relative_error(2.2, 1.8).unwrap();
    assert!((d - 0.4 / 2.2).abs() < 1e-12);
}

#[test]
fn actual_metrics_invariant_to_time_offset() {
    // Shifting the whole series in time must not change any metric when
    // the context shifts with it.
    let s1 = tiny_series();
    let times2: Vec<f64> = s1.times().iter().map(|t| t + 100.0).collect();
    let s2 = PerformanceSeries::new("shifted", times2, s1.values().to_vec()).unwrap();
    let c1 = ctx();
    let c2 = MetricContext {
        t_start: c1.t_start + 100.0,
        t_end: c1.t_end + 100.0,
        t_min: c1.t_min + 100.0,
        t_full_start: c1.t_full_start + 100.0,
        ..c1
    }
    .validated()
    .unwrap();
    for kind in MetricKind::ALL {
        let a = actual_metric(&s1, kind, &c1).unwrap();
        let b = actual_metric(&s2, kind, &c2).unwrap();
        assert!((a - b).abs() < 1e-10, "{kind}: {a} vs {b}");
    }
}
