//! Integration tests asserting the paper's headline qualitative claims
//! hold on this reproduction (DESIGN.md §1 lists them).
//!
//! Absolute numbers differ from the paper (the data substrate is
//! synthetic; see DESIGN.md §2) — these tests pin the *shape* of the
//! results: who wins, what fails, and where.

use resilience_core::analysis::evaluate_model;
use resilience_core::bathtub::{CompetingRisksFamily, QuadraticFamily};
use resilience_core::mixture::MixtureFamily;
use resilience_core::model::ModelFamily;
use resilience_data::recessions::Recession;
use resilience_data::PerformanceSeries;

const ALPHA: f64 = 0.05;

fn bathtub_holdout(series: &PerformanceSeries) -> usize {
    if series.len() >= 40 {
        5
    } else {
        3
    }
}

fn mixture_holdout(series: &PerformanceSeries) -> usize {
    let train = ((series.len() as f64) * 0.9).round() as usize;
    (series.len() - train).max(1)
}

/// V- and U-shaped recessions are fit well by both bathtub families
/// (Table I: adjusted R² ≳ 0.9 on 1990-93 and high values elsewhere).
#[test]
fn bathtub_models_fit_v_and_u_shapes() {
    for recession in [
        Recession::R1974_76,
        Recession::R1981_83,
        Recession::R1990_93,
        Recession::R2001_05,
        Recession::R2007_09,
    ] {
        let series = recession.payroll_index();
        let holdout = bathtub_holdout(&series);
        for fam in [&QuadraticFamily as &dyn ModelFamily, &CompetingRisksFamily] {
            let eval = evaluate_model(fam, &series, holdout, ALPHA).unwrap();
            assert!(
                eval.gof.r2_adj > 0.75,
                "{} on {recession}: r2_adj = {}",
                fam.name(),
                eval.gof.r2_adj
            );
        }
    }
}

/// The W-shaped 1980 recession defeats both bathtub families (Table I:
/// low or negative adjusted R²).
#[test]
fn bathtub_models_fail_on_w_shape() {
    let series = Recession::R1980.payroll_index();
    for fam in [&QuadraticFamily as &dyn ModelFamily, &CompetingRisksFamily] {
        let eval = evaluate_model(fam, &series, 5, ALPHA).unwrap();
        assert!(
            eval.gof.r2_adj < 0.5,
            "{} should fail on the W shape: r2_adj = {}",
            fam.name(),
            eval.gof.r2_adj
        );
    }
}

/// The L/K-shaped 2020-21 recession defeats both bathtub families
/// (Table I).
#[test]
fn bathtub_models_fail_on_l_shape() {
    let series = Recession::R2020_21.payroll_index();
    for fam in [&QuadraticFamily as &dyn ModelFamily, &CompetingRisksFamily] {
        let eval = evaluate_model(fam, &series, 3, ALPHA).unwrap();
        assert!(
            eval.gof.r2_adj < 0.5,
            "{} should fail on the L shape: r2_adj = {}",
            fam.name(),
            eval.gof.r2_adj
        );
    }
}

/// The competing-risks model is the more flexible bathtub form: it
/// achieves the better adjusted R² on a majority of the recessions
/// (paper §V: "the competing risks model exhibited greater flexibility").
#[test]
fn competing_risks_is_more_flexible_than_quadratic() {
    let mut cr_wins = 0usize;
    for recession in Recession::ALL {
        let series = recession.payroll_index();
        let holdout = bathtub_holdout(&series);
        let q = evaluate_model(&QuadraticFamily, &series, holdout, ALPHA).unwrap();
        let cr = evaluate_model(&CompetingRisksFamily, &series, holdout, ALPHA).unwrap();
        if cr.gof.r2_adj >= q.gof.r2_adj {
            cr_wins += 1;
        }
    }
    assert!(
        cr_wins >= 4,
        "competing risks should win r2_adj on most data sets, won {cr_wins}/7"
    );
}

/// Exp-Exp is never the best mixture (Table III: it performs poorly
/// everywhere, with at least one Weibull combination clearly ahead).
#[test]
fn exp_exp_is_never_the_best_mixture() {
    for recession in Recession::ALL {
        let series = recession.payroll_index();
        let holdout = mixture_holdout(&series);
        let evals: Vec<_> = MixtureFamily::paper_combinations()
            .iter()
            .map(|fam| evaluate_model(fam, &series, holdout, ALPHA).unwrap())
            .collect();
        let exp_exp_sse = evals[0].gof.sse;
        let best_other = evals[1..]
            .iter()
            .map(|e| e.gof.sse)
            .fold(f64::INFINITY, f64::min);
        assert!(
            best_other <= exp_exp_sse * 1.0000001,
            "{recession}: Exp-Exp SSE {exp_exp_sse} beat all Weibull combos ({best_other})"
        );
    }
}

/// On every data set other than the W- and L-shaped ones, at least one
/// Weibull-bearing mixture achieves adjusted R² > 0.9 (Table III).
#[test]
fn weibull_mixtures_reach_high_r2_on_v_u_shapes() {
    for recession in [
        Recession::R1974_76,
        Recession::R1981_83,
        Recession::R1990_93,
        Recession::R2001_05,
        Recession::R2007_09,
    ] {
        let series = recession.payroll_index();
        let holdout = mixture_holdout(&series);
        let best = MixtureFamily::paper_combinations()[1..]
            .iter()
            .map(|fam| {
                evaluate_model(fam, &series, holdout, ALPHA)
                    .unwrap()
                    .gof
                    .r2_adj
            })
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            best > 0.9,
            "{recession}: best Weibull mixture r2_adj = {best}"
        );
    }
}

/// Mixtures also fail on the W-shaped 1980 data (Table III: negative or
/// very low adjusted R² for every combination).
#[test]
fn mixtures_fail_on_w_shape() {
    let series = Recession::R1980.payroll_index();
    let holdout = mixture_holdout(&series);
    for fam in MixtureFamily::paper_combinations() {
        let eval = evaluate_model(&fam, &series, holdout, ALPHA).unwrap();
        assert!(
            eval.gof.r2_adj < 0.7,
            "{} should fail on the W shape: r2_adj = {}",
            fam.name(),
            eval.gof.r2_adj
        );
    }
}

/// Mixtures fail on the L-shaped 2020-21 data (Table III).
#[test]
fn mixtures_fail_on_l_shape() {
    let series = Recession::R2020_21.payroll_index();
    let holdout = mixture_holdout(&series);
    for fam in MixtureFamily::paper_combinations() {
        let eval = evaluate_model(&fam, &series, holdout, ALPHA).unwrap();
        assert!(
            eval.gof.r2_adj < 0.7,
            "{} should fail on the L shape: r2_adj = {}",
            fam.name(),
            eval.gof.r2_adj
        );
    }
}

/// Empirical coverage of the 95 % confidence bands is high (paper: ~90
/// to 100 % across all experiments).
#[test]
fn confidence_bands_cover_most_observations() {
    for recession in Recession::ALL {
        let series = recession.payroll_index();
        let holdout = bathtub_holdout(&series);
        for fam in [&QuadraticFamily as &dyn ModelFamily, &CompetingRisksFamily] {
            let eval = evaluate_model(fam, &series, holdout, ALPHA).unwrap();
            assert!(
                eval.gof.ec >= 0.8,
                "{} on {recession}: EC = {}",
                fam.name(),
                eval.gof.ec
            );
        }
    }
}
