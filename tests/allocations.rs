//! Allocation-regression tests for the fitting hot path.
//!
//! The SSE objective contract (DESIGN.md §Performance & determinism):
//! after setup, one objective evaluation — `internal_to_params_into` +
//! `predict_params_into` over reusable scratch — performs **zero** heap
//! allocations, and the Nelder–Mead iteration loop allocates nothing
//! beyond its setup buffers. A counting global allocator makes both
//! contracts a hard test instead of a code-review convention.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

use resilience_core::bathtub::{CompetingRisksFamily, QuadraticFamily, QuarticFamily};
use resilience_core::extended::{CrashRecoveryFamily, DoubleBathtubFamily};
use resilience_core::fit::{fit_least_squares, fit_least_squares_with, FitConfig, WarmStart};
use resilience_core::mixture::MixtureFamily;
use resilience_core::model::ModelFamily;
use resilience_data::recessions::Recession;
use resilience_obs::{Event, JsonlObserver, NullObserver, Observer};
use resilience_optim::{Control, Parallelism};
use std::sync::Arc;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// Counting is Relaxed: the tests are single-threaded around the measured
// sections (Parallelism::Serial), so the counter needs no ordering.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Minimum allocation delta over `reps` runs of `f`. The libtest harness
/// occasionally allocates on its own threads (output capture, bookkeeping)
/// inside a measured window; that noise only ever adds to the count, so the
/// minimum over a few repetitions recovers the true footprint of `f`.
fn min_delta(reps: usize, mut f: impl FnMut()) -> u64 {
    (0..reps)
        .map(|_| {
            let before = allocations();
            f();
            allocations() - before
        })
        .min()
        .expect("reps > 0")
}

/// Every family the pipeline fits, paper and extended.
fn all_families(mixtures: &[MixtureFamily]) -> Vec<&dyn ModelFamily> {
    let mut families: Vec<&dyn ModelFamily> = vec![
        &QuadraticFamily,
        &CompetingRisksFamily,
        &QuarticFamily,
        &DoubleBathtubFamily,
        &CrashRecoveryFamily,
    ];
    for fam in mixtures {
        families.push(fam);
    }
    families
}

/// One SSE-objective evaluation allocates nothing, for every family: the
/// exact scratch-buffer pattern `fit_least_squares` uses.
#[test]
fn sse_objective_is_allocation_free() {
    let series = Recession::R1990_93.payroll_index();
    let times = series.times();
    let observed = series.values();
    let mixtures = MixtureFamily::paper_combinations();

    for family in all_families(&mixtures) {
        // Setup (allowed to allocate): a feasible internal point and the
        // scratch buffers.
        let guess = family.initial_guesses(&series).remove(0);
        let internal = family
            .params_to_internal(&guess)
            .expect("first guess is feasible");
        let scratch = RefCell::new((vec![0.0; family.n_params()], vec![0.0; times.len()]));
        let objective = |x: &[f64]| -> f64 {
            let mut guard = scratch.borrow_mut();
            let (params, predicted) = &mut *guard;
            family.internal_to_params_into(x, params);
            if !family.predict_params_into(params, times, predicted) {
                return f64::INFINITY;
            }
            observed
                .iter()
                .zip(predicted.iter())
                .map(|(y, p)| (y - p) * (y - p))
                .sum()
        };
        // Warm-up call outside the measured window.
        let warm = objective(&internal);
        assert!(
            warm.is_finite(),
            "{}: objective at a feasible point",
            family.name()
        );

        let mut acc = 0.0;
        let delta = min_delta(3, || {
            for _ in 0..100 {
                acc += objective(&internal);
            }
        });
        assert!(acc.is_finite());
        assert_eq!(
            delta,
            0,
            "{}: SSE objective allocated {delta} times over 100 calls",
            family.name(),
        );

        // The infeasible path must be allocation-free too (it runs
        // constantly while the simplex probes outside the feasible set).
        let bad = vec![f64::NAN; internal.len()];
        let mut bad_params = vec![0.0; family.n_params()];
        let mut bad_pred = vec![0.0; times.len()];
        family.internal_to_params_into(&bad, &mut bad_params);
        let delta = min_delta(3, || {
            for _ in 0..100 {
                assert!(!family.predict_params_into(&bad_params, times, &mut bad_pred));
            }
        });
        assert_eq!(
            delta,
            0,
            "{}: infeasible probe allocated {delta} times over 100 calls",
            family.name(),
        );
    }
}

/// `predict_into` allocates nothing for a built model.
#[test]
fn predict_into_is_allocation_free() {
    let series = Recession::R1990_93.payroll_index();
    let times = series.times();
    let fit = fit_least_squares(&QuadraticFamily, &series, &FitConfig::default()).unwrap();
    let mut out = vec![0.0; times.len()];
    fit.model.predict_into(times, &mut out);

    let delta = min_delta(3, || {
        for _ in 0..100 {
            fit.model.predict_into(times, &mut out);
        }
    });
    assert_eq!(
        delta, 0,
        "predict_into allocated {delta} times over 100 calls"
    );
}

/// The Nelder–Mead iteration loop allocates nothing: a fit capped at 10×
/// the iterations allocates exactly as much as one capped at 1× (all
/// allocation is setup, none is per-iteration).
#[test]
fn nelder_mead_iterations_do_not_allocate() {
    let series = Recession::R1990_93.payroll_index();
    // Wei-Exp mixture: slow to converge, so both runs hit their caps.
    let family = &MixtureFamily::paper_combinations()[1];

    let count_fit = |max_iterations: usize| -> u64 {
        let mut config = FitConfig {
            lm_polish: false,
            parallelism: Parallelism::Serial,
            max_starts: 1,
            ..FitConfig::default()
        };
        config.nelder_mead.max_iterations = max_iterations;
        min_delta(5, || {
            let fit = fit_least_squares(family, &series, &config).unwrap();
            assert!(fit.sse.is_finite());
        })
    };

    // Warm-up to populate any lazily initialized state.
    count_fit(50);
    let short = count_fit(50);
    let long = count_fit(500);
    assert_eq!(
        short, long,
        "10x the Nelder-Mead iterations changed the allocation count \
         ({short} vs {long}) - the iteration loop allocates"
    );
}

/// The batched SSE kernels (DESIGN.md §11) allocate nothing in steady
/// state: every per-point lane lives in fixed-width stack arrays, so a
/// whole-batch evaluation costs exactly zero heap operations once the
/// caller's buffers exist. Thirteen points per batch crosses the
/// width-8 chunk boundary, exercising the ragged tail.
#[test]
fn batched_sse_kernel_is_allocation_free() {
    let series = Recession::R1990_93.payroll_index();
    let times = series.times();
    let observed = series.values();
    let mixtures = MixtureFamily::paper_combinations();

    let mut families: Vec<&dyn ModelFamily> = vec![&QuadraticFamily, &CompetingRisksFamily];
    for fam in &mixtures {
        families.push(fam);
    }
    for family in families {
        // Setup (allowed to allocate): a feasible internal point tiled
        // into a batch, plus the output buffer.
        let guess = family.initial_guesses(&series).remove(0);
        let internal = family
            .params_to_internal(&guess)
            .expect("first guess is feasible");
        let batch: Vec<f64> = (0..13).flat_map(|_| internal.iter().copied()).collect();
        let mut out = vec![0.0; 13];
        assert!(
            family.sse_batch_into(&batch, times, observed, &mut out),
            "{}: batched kernel missing",
            family.name()
        );
        assert!(out.iter().all(|v| v.is_finite()));

        let delta = min_delta(3, || {
            for _ in 0..100 {
                assert!(family.sse_batch_into(&batch, times, observed, &mut out));
            }
        });
        assert_eq!(
            delta,
            0,
            "{}: batched SSE allocated {delta} times over 100 batches",
            family.name(),
        );
    }
}

/// The warm-start probe (DESIGN.md §11) allocates only at setup: a
/// warm-started fit capped at 10× the iterations allocates exactly as
/// much as one capped at 1×. `max_evaluations: 0` disables the
/// short-circuit so both runs always execute the full warm-probe +
/// cold-multi-start path.
#[test]
fn warm_start_fit_path_does_not_allocate_per_iteration() {
    let series = Recession::R1990_93.payroll_index();
    // Wei-Exp mixture: slow to converge, so both runs hit their caps.
    let family = &MixtureFamily::paper_combinations()[1];
    let seed = family.initial_guesses(&series).remove(0);

    let count_fit = |max_iterations: usize| -> u64 {
        let mut config = FitConfig {
            lm_polish: false,
            parallelism: Parallelism::Serial,
            max_starts: 1,
            warm_start: Some(WarmStart {
                params: seed.clone(),
                max_evaluations: 0,
            }),
            ..FitConfig::default()
        };
        config.nelder_mead.max_iterations = max_iterations;
        min_delta(5, || {
            let fit = fit_least_squares(family, &series, &config).unwrap();
            assert!(fit.sse.is_finite());
        })
    };

    // Warm-up to populate any lazily initialized state.
    count_fit(50);
    let short = count_fit(50);
    let long = count_fit(500);
    assert_eq!(
        short, long,
        "10x the iterations changed the warm-started fit's allocation \
         count ({short} vs {long}) - the warm path allocates per iteration"
    );
}

/// The JSONL sink's encode path reuses one line buffer under its lock
/// (DESIGN.md §15): once that buffer has grown to cover the longest
/// event shape, recording any event performs zero heap allocations —
/// the float formatter writes into stack scratch and the interned
/// family names are `&'static str`. Exercised over every event shape
/// in the vocabulary via [`Event::examples`].
#[test]
fn jsonl_encode_is_allocation_free_in_steady_state() {
    let observer = JsonlObserver::new(std::io::sink());
    let examples = Event::examples();
    // Warm-up (allowed to allocate): every shape once, growing the
    // reused line buffer to its steady-state capacity.
    for event in &examples {
        observer.record(event);
    }

    let delta = min_delta(3, || {
        for _ in 0..10 {
            for event in &examples {
                observer.record(event);
            }
        }
    });
    assert_eq!(
        delta, 0,
        "JSONL encode allocated {delta} times over 10 passes of the \
         full event vocabulary"
    );
    let (_, dropped) = observer.into_parts();
    assert_eq!(dropped, 0, "sink writes never fail");
}

/// Attaching the default telemetry sink must not cost the hot path
/// anything: `Control::observe` drops disabled sinks at attach time, so a
/// `NullObserver`-observed fit takes the same code path — and the exact
/// same allocation count — as an unobserved one (DESIGN.md §10).
#[test]
fn null_observer_keeps_the_fit_allocation_footprint() {
    let series = Recession::R1990_93.payroll_index();
    // Wei-Exp mixture: slow to converge, so the run hits the iteration
    // cap and the per-iteration path dominates.
    let family = &MixtureFamily::paper_combinations()[1];
    let mut config = FitConfig {
        lm_polish: false,
        parallelism: Parallelism::Serial,
        max_starts: 1,
        ..FitConfig::default()
    };
    config.nelder_mead.max_iterations = 200;

    let count_fit = |control: &Control| -> u64 {
        min_delta(5, || {
            let fit = fit_least_squares_with(family, &series, &config, control).unwrap();
            assert!(fit.sse.is_finite());
        })
    };

    let unobserved = Control::unbounded();
    let null_observed = Control::unbounded().observe(Arc::new(NullObserver));
    // Warm-up to populate any lazily initialized state.
    count_fit(&unobserved);
    let plain = count_fit(&unobserved);
    let nulled = count_fit(&null_observed);
    assert_eq!(
        plain, nulled,
        "a NullObserver-observed fit allocated differently ({nulled}) \
         from an unobserved one ({plain})"
    );
}
