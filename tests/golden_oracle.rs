//! Golden-oracle fixtures: closed-form curves whose goodness-of-fit
//! values and Eq. 14–21 resilience metrics are derivable by hand, so the
//! pipeline is checked against *known numbers* rather than against
//! itself.
//!
//! The oracle curve is the line `P(t) = t` over the monthly grid
//! `t = 0, 1, …, 10` with the metric window `[t_start, t_end] = [4, 10]`,
//! nominal `P(4) = 4`, minimum at `t_min = 2`, full interval starting at
//! `t_full_start = 0`, and Eq. 21 weight `α = 1/2`. Every expected value
//! below is a one-line integral of `t`:
//!
//! * Eq. 14 preserved         `∫₄¹⁰ t dt`                        = 42
//! * Eq. 16 lost              `4·6 − 42`                         = −18
//! * Eq. 15 norm. preserved   `42 / (4·6)`                       = 1.75
//! * Eq. 17 norm. lost        `(24 − 42) / 24`                   = −0.75
//! * Eq. 18 from minimum      `∫₂¹⁰ t dt − P(2)·8 = 48 − 16`     = 32
//! * Eq. 19 avg. preserved    `42 / 6`                           = 7
//! * Eq. 20 avg. lost         `−18 / 6`                          = −3
//! * Eq. 21 weighted          `½·(∫₀² t dt)/2 + ½·(∫₂¹⁰ t dt)/8` = 3.5
//!
//! Both the observed path (trapezoid integration of the sampled line —
//! exact for piecewise-linear data) and the model path (the default
//! adaptive-Simpson `area`, exact for polynomials) must hit these
//! numbers.

use resilience_core::metrics::{actual_metric, predicted_metric, MetricContext, MetricKind};
use resilience_core::model::ResilienceModel;
use resilience_core::validate::{pmse, r2_adjusted, sse};
use resilience_data::scenario::{Drift, Noise, Recovery, ScenarioSpec, Shock};
use resilience_data::PerformanceSeries;

/// The oracle model `P(t) = t`.
struct Line;

impl ResilienceModel for Line {
    fn name(&self) -> &'static str {
        "Line"
    }
    fn params(&self) -> Vec<f64> {
        vec![0.0, 1.0]
    }
    fn predict(&self, t: f64) -> f64 {
        t
    }
}

/// A constant model `P(t) = c` for the adjusted-R² fixture.
struct Flat(f64);

impl ResilienceModel for Flat {
    fn name(&self) -> &'static str {
        "Flat"
    }
    fn params(&self) -> Vec<f64> {
        vec![self.0]
    }
    fn predict(&self, _t: f64) -> f64 {
        self.0
    }
}

/// `P(t) = t` sampled at `t = 0, 1, …, 10`.
fn line_series() -> PerformanceSeries {
    PerformanceSeries::monthly("line", (0..11).map(|i| i as f64).collect()).unwrap()
}

fn oracle_ctx() -> MetricContext {
    MetricContext {
        t_start: 4.0,
        t_end: 10.0,
        nominal: 4.0,
        t_min: 2.0,
        t_full_start: 0.0,
        weight: 0.5,
    }
    .validated()
    .unwrap()
}

/// Expected value of each Eq. 14–21 metric on the oracle line.
fn expected(kind: MetricKind) -> f64 {
    match kind {
        MetricKind::PerformancePreserved => 42.0,
        MetricKind::PerformanceLost => -18.0,
        MetricKind::NormalizedAveragePreserved => 1.75,
        MetricKind::NormalizedAverageLost => -0.75,
        MetricKind::PreservedFromMinimum => 32.0,
        MetricKind::AveragePreserved => 7.0,
        MetricKind::AverageLost => -3.0,
        MetricKind::WeightedBeforeAfterMinimum => 3.5,
    }
}

#[test]
fn actual_metrics_match_hand_derived_values() {
    // Trapezoid integration is exact for the piecewise-linear sampling
    // of a line, so the tolerance is pure floating-point roundoff.
    let series = line_series();
    let ctx = oracle_ctx();
    for kind in MetricKind::ALL {
        let got = actual_metric(&series, kind, &ctx).unwrap();
        let want = expected(kind);
        assert!(
            (got - want).abs() < 1e-9,
            "{kind}: actual {got} vs oracle {want}"
        );
    }
}

#[test]
fn predicted_metrics_match_hand_derived_values() {
    // The default `area` quadrature (adaptive Simpson) is exact for
    // polynomials of degree ≤ 3, so the line integrates exactly too.
    let ctx = oracle_ctx();
    for kind in MetricKind::ALL {
        let got = predicted_metric(&Line, kind, &ctx).unwrap();
        let want = expected(kind);
        assert!(
            (got - want).abs() < 1e-7,
            "{kind}: predicted {got} vs oracle {want}"
        );
    }
}

#[test]
fn actual_and_predicted_paths_agree_on_the_oracle() {
    // The two computation paths (series trapezoid vs model quadrature)
    // share only the metric formulas; on the oracle they must agree.
    let series = line_series();
    let ctx = oracle_ctx();
    for kind in MetricKind::ALL {
        let a = actual_metric(&series, kind, &ctx).unwrap();
        let p = predicted_metric(&Line, kind, &ctx).unwrap();
        assert!((a - p).abs() < 1e-7, "{kind}: {a} vs {p}");
    }
}

#[test]
fn sse_golden_value() {
    // Observations `y = t + 1` against the model `P(t) = t`: eleven
    // residuals of exactly 1, so SSE = 11 (Eq. 9).
    let series =
        PerformanceSeries::monthly("offset", (0..11).map(|i| i as f64 + 1.0).collect()).unwrap();
    let got = sse(&Line, &series);
    assert!((got - 11.0).abs() < 1e-12, "sse = {got}");
}

#[test]
fn pmse_golden_value() {
    // Same offset data split after 8 training points: the test suffix
    // holds 3 residuals of exactly 1, so PMSE = 3·1²/3 = 1 (Eq. 10).
    let series =
        PerformanceSeries::monthly("offset", (0..11).map(|i| i as f64 + 1.0).collect()).unwrap();
    let split = series.split_at(8).unwrap();
    assert_eq!(split.test.len(), 3);
    let got = pmse(&Line, &split.test).unwrap();
    assert!((got - 1.0).abs() < 1e-12, "pmse = {got}");
}

#[test]
fn r2_adjusted_golden_value() {
    // Values 1..=6 (mean 3.5, SSY = 17.5) against the constant model
    // P(t) = 3.5 with m = 1: SSE = SSY, so Eq. 11 gives
    // r²_adj = 1 − 1·(n−1)/(n−m−1) = 1 − 5/4 = −0.25, exactly.
    let series = PerformanceSeries::monthly("ramp", (1..=6).map(f64::from).collect()).unwrap();
    let got = r2_adjusted(&Flat(3.5), &series, 1).unwrap();
    assert!((got - (-0.25)).abs() < 1e-12, "r2_adj = {got}");
}

#[test]
fn model_area_default_is_exact_for_the_oracle_line() {
    // The `ResilienceModel::area` default (adaptive Simpson) underpins
    // every predicted metric; pin its exactness on the oracle directly.
    let a = Line.area(4.0, 10.0).unwrap();
    assert!((a - 42.0).abs() < 1e-9, "area = {a}");
    let b = Line.area(0.0, 2.0).unwrap();
    assert!((b - 2.0).abs() < 1e-9, "area = {b}");
}

// ---------------------------------------------------------------------
// Scenario-engine oracles: two canonical scenarios whose Eq. 14–21
// metrics are hand-derivable because the generated curves are exact
// piecewise shapes (no noise, no drift).
// ---------------------------------------------------------------------

/// Scenario oracle A: a step outage at `t = 4` losing half the capacity,
/// restoring exponentially with rate `ln 2` — so one time unit halves the
/// remaining loss and every sampled value is a dyadic rational:
/// `P(i) = 1` for `i < 4` and `P(i) = 1 − 2^{−(i−3)}` for `i ≥ 4`.
fn step_outage_series() -> PerformanceSeries {
    let spec = ScenarioSpec {
        n: 25,
        shocks: vec![Shock::Step {
            at: 4.0,
            depth: 0.5,
            recovery: Recovery::Exponential {
                rate: std::f64::consts::LN_2,
            },
        }],
        events: None,
        drift: Drift::None,
        noise: Noise::None,
        floor: None,
    };
    spec.generate("step-outage-oracle").unwrap()
}

/// Window `[4, 24]`, nominal 1, minimum at the step instant `t_min = 4`.
fn step_outage_ctx() -> MetricContext {
    MetricContext {
        t_start: 4.0,
        t_end: 24.0,
        nominal: 1.0,
        t_min: 4.0,
        t_full_start: 0.0,
        weight: 0.5,
    }
    .validated()
    .unwrap()
}

/// Hand-derived Eq. 14–21 values for the sampled step-outage curve.
///
/// Trapezoid loss area over `[4, 24]` with `L_k = 2^{−(k+1)}` at
/// `t = 4 + k`:
/// `(L_0 + L_20)/2 + Σ_{k=1}^{19} L_k = 2^{−2} + 2^{−22} + 2^{−1} − 2^{−20}
///  = 3/4 − 3·2^{−22}`,
/// so the preserved area is `A = 19.25 + 3·2^{−22}`. For Eq. 21 the
/// before-window `[0, 4]` is flat at 1 except the final trapezoid
/// `[3, 4]` ending at `P(4) = 1/2`, giving area `3 + 3/4` and average
/// `15/16`.
fn step_outage_expected(kind: MetricKind) -> f64 {
    let a = 19.25 + 3.0 / 4_194_304.0; // 19.25 + 3·2⁻²²
    match kind {
        MetricKind::PerformancePreserved => a,
        MetricKind::PerformanceLost => 20.0 - a,
        MetricKind::NormalizedAveragePreserved | MetricKind::AveragePreserved => a / 20.0,
        MetricKind::NormalizedAverageLost | MetricKind::AverageLost => (20.0 - a) / 20.0,
        MetricKind::PreservedFromMinimum => a - 10.0,
        MetricKind::WeightedBeforeAfterMinimum => 0.5 * (15.0 / 16.0) + 0.5 * (a / 20.0),
    }
}

#[test]
fn step_outage_scenario_metrics_match_hand_derived_values() {
    // Every sampled value and every trapezoid is a dyadic rational, so
    // the tolerance is pure floating-point roundoff.
    let series = step_outage_series();
    let ctx = step_outage_ctx();
    for kind in MetricKind::ALL {
        let got = actual_metric(&series, kind, &ctx).unwrap();
        let want = step_outage_expected(kind);
        assert!(
            (got - want).abs() < 1e-12,
            "{kind}: actual {got} vs oracle {want}"
        );
    }
}

/// The continuous restoration path behind scenario oracle A:
/// `P(t) = 1 − (1/2)·e^{−ln2·(t−4)}` for `t ≥ 4`, nominal 1 before.
struct StepRestore;

impl ResilienceModel for StepRestore {
    fn name(&self) -> &'static str {
        "StepRestore"
    }
    fn params(&self) -> Vec<f64> {
        vec![4.0, 0.5, std::f64::consts::LN_2]
    }
    fn predict(&self, t: f64) -> f64 {
        if t < 4.0 {
            1.0
        } else {
            1.0 - 0.5 * (-std::f64::consts::LN_2 * (t - 4.0)).exp()
        }
    }
}

#[test]
fn step_outage_predicted_metrics_match_closed_form_integral() {
    // On the continuous path the loss integral over [4, 24] is
    // `(1/2)·(1 − 2⁻²⁰)/ln 2` in closed form. Every metric window below
    // lies inside the smooth branch (t ≥ 4), so adaptive Simpson
    // converges to quadrature tolerance. Eq. 21 is excluded: its
    // before-window ends exactly at the model's jump point, which the
    // sampled-series oracle above already covers.
    let ctx = step_outage_ctx();
    let loss = 0.5 * (1.0 - 1.0 / 1_048_576.0) / std::f64::consts::LN_2;
    let a = 20.0 - loss;
    for kind in MetricKind::ALL {
        if kind == MetricKind::WeightedBeforeAfterMinimum {
            continue;
        }
        let want = match kind {
            MetricKind::PerformancePreserved => a,
            MetricKind::PerformanceLost => 20.0 - a,
            MetricKind::NormalizedAveragePreserved | MetricKind::AveragePreserved => a / 20.0,
            MetricKind::NormalizedAverageLost | MetricKind::AverageLost => (20.0 - a) / 20.0,
            MetricKind::PreservedFromMinimum => a - 10.0,
            MetricKind::WeightedBeforeAfterMinimum => unreachable!(),
        };
        let got = predicted_metric(&StepRestore, kind, &ctx).unwrap();
        assert!(
            (got - want).abs() < 1e-6,
            "{kind}: predicted {got} vs closed form {want}"
        );
    }
}

/// Scenario oracle B: a W-shaped double dip built from two rectangular
/// outages — 25 % down over `[2, 5)`, then 50 % down over `[7, 10)` —
/// so the sampled values are exactly
/// `[1, 1, ¾, ¾, ¾, 1, 1, ½, ½, ½, 1, 1, 1]`.
fn double_dip_series() -> PerformanceSeries {
    let spec = ScenarioSpec {
        n: 13,
        shocks: vec![
            Shock::Outage {
                at: 2.0,
                restore_at: 5.0,
                depth: 0.25,
            },
            Shock::Outage {
                at: 7.0,
                restore_at: 10.0,
                depth: 0.5,
            },
        ],
        events: None,
        drift: Drift::None,
        noise: Noise::None,
        floor: None,
    };
    spec.generate("double-dip-oracle").unwrap()
}

/// Hand-derived Eq. 14–21 values for the double-dip curve over the full
/// window `[0, 12]` with the global minimum at `t_min = 7`:
///
/// * trapezoid area over `[0, 12]`:
///   `1 + ⅞ + ¾ + ¾ + ⅞ + 1 + ¾ + ½ + ½ + ¾ + 1 + 1 = 9.75`
/// * area over `[7, 12]`: `½ + ½ + ¾ + 1 + 1 = 3.75`, `P(7) = ½`
/// * area over `[0, 7]`: `9.75 − 3.75 = 6`
fn double_dip_expected(kind: MetricKind) -> f64 {
    match kind {
        MetricKind::PerformancePreserved => 9.75,
        MetricKind::PerformanceLost => 2.25,
        MetricKind::NormalizedAveragePreserved | MetricKind::AveragePreserved => 9.75 / 12.0,
        MetricKind::NormalizedAverageLost | MetricKind::AverageLost => 2.25 / 12.0,
        MetricKind::PreservedFromMinimum => 3.75 - 0.5 * 5.0,
        MetricKind::WeightedBeforeAfterMinimum => 0.5 * (6.0 / 7.0) + 0.5 * (3.75 / 5.0),
    }
}

#[test]
fn double_dip_scenario_metrics_match_hand_derived_values() {
    let series = double_dip_series();
    // Pin the generated samples themselves first: the metric oracle is
    // only as good as the curve it integrates.
    let expected_values = [
        1.0, 1.0, 0.75, 0.75, 0.75, 1.0, 1.0, 0.5, 0.5, 0.5, 1.0, 1.0, 1.0,
    ];
    assert_eq!(series.values(), expected_values);
    let ctx = MetricContext {
        t_start: 0.0,
        t_end: 12.0,
        nominal: 1.0,
        t_min: 7.0,
        t_full_start: 0.0,
        weight: 0.5,
    }
    .validated()
    .unwrap();
    for kind in MetricKind::ALL {
        let got = actual_metric(&series, kind, &ctx).unwrap();
        let want = double_dip_expected(kind);
        assert!(
            (got - want).abs() < 1e-12,
            "{kind}: actual {got} vs oracle {want}"
        );
    }
}
