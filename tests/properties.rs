//! Property-style tests on the workspace's core invariants.
//!
//! Each property is exercised over many randomized cases drawn from a
//! seeded [`XorShift64`] stream, so failures are reproducible (the case
//! index and drawn values appear in the assertion message) and the suite
//! is hermetic — no proptest dependency.

use resilience_core::bathtub::{CompetingRisksModel, QuadraticFamily, QuadraticModel};
use resilience_core::metrics::{actual_metric, MetricContext, MetricKind};
use resilience_core::mixture::{ComponentKind, MixtureModel, Trend};
use resilience_core::model::{ModelFamily, ResilienceModel};
use resilience_data::csv::{read_series, write_series};
use resilience_data::PerformanceSeries;
use resilience_stats::{ContinuousDistribution, Exponential, Normal, Weibull, XorShift64};

const CASES: usize = 200;

/// Uniform draw in `[lo, hi)`.
fn uniform(rng: &mut XorShift64, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.next_f64()
}

/// Vector of uniform draws with a random length in `[min_len, max_len)`.
fn uniform_vec(rng: &mut XorShift64, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
    let len = min_len + rng.next_index(max_len - min_len);
    (0..len).map(|_| uniform(rng, lo, hi)).collect()
}

/// Feasible quadratic bathtub parameters (α, β, γ) via the same
/// (α, s, γ) construction the family uses.
fn quadratic_params(rng: &mut XorShift64) -> (f64, f64, f64) {
    let alpha = uniform(rng, 0.1, 10.0);
    let s = uniform(rng, 0.05, 0.95);
    let gamma = uniform(rng, 1e-6, 0.1);
    let beta = -2.0 * (alpha * gamma).sqrt() * s;
    (alpha, beta, gamma)
}

/// The quadratic trough formula matches a numerical minimum.
#[test]
fn quadratic_trough_is_a_minimum() {
    let mut rng = XorShift64::new(0xA001);
    for case in 0..CASES {
        let (alpha, beta, gamma) = quadratic_params(&mut rng);
        let m = QuadraticModel::new(alpha, beta, gamma).unwrap();
        let t_d = m.trough();
        assert!(t_d > 0.0, "case {case}: ({alpha}, {beta}, {gamma})");
        let p_d = m.predict(t_d);
        assert!(m.predict(t_d - 0.1) >= p_d, "case {case}");
        assert!(m.predict(t_d + 0.1) >= p_d, "case {case}");
        assert!((m.minimum() - p_d).abs() < 1e-10, "case {case}");
    }
}

/// Eq. 2: the closed-form recovery time satisfies P(t_r) = level and
/// lies at/after the trough.
#[test]
fn quadratic_recovery_time_solves_curve() {
    let mut rng = XorShift64::new(0xA002);
    for case in 0..CASES {
        let (alpha, beta, gamma) = quadratic_params(&mut rng);
        let frac = uniform(&mut rng, 0.01, 0.99);
        let m = QuadraticModel::new(alpha, beta, gamma).unwrap();
        // A level strictly between the minimum and the initial value.
        let level = m.minimum() + frac * (alpha - m.minimum());
        if level > m.minimum() {
            let t_r = m.recovery_time(level).unwrap();
            assert!(t_r >= m.trough() - 1e-9, "case {case}");
            assert!(
                (m.predict(t_r) - level).abs() < 1e-6 * (1.0 + level.abs()),
                "case {case}: ({alpha}, {beta}, {gamma}), frac {frac}"
            );
        }
    }
}

/// Eq. 3: the closed-form area equals numerical quadrature.
#[test]
fn quadratic_area_matches_quadrature() {
    let mut rng = XorShift64::new(0xA003);
    for case in 0..CASES {
        let (alpha, beta, gamma) = quadratic_params(&mut rng);
        let span = uniform(&mut rng, 1.0, 100.0);
        let m = QuadraticModel::new(alpha, beta, gamma).unwrap();
        let analytic = m.area(0.0, span).unwrap();
        let numeric =
            resilience_math::quad::adaptive_simpson(|t| m.predict(t), 0.0, span, 1e-10, 40)
                .unwrap();
        assert!(
            (analytic - numeric).abs() < 1e-6 * (1.0 + analytic.abs()),
            "case {case}: analytic {analytic} vs numeric {numeric}"
        );
    }
}

/// Quadratic family: internal → external always lands in the bathtub
/// validity region, and the roundtrip is the identity.
#[test]
fn quadratic_family_transform_roundtrip() {
    let mut rng = XorShift64::new(0xA004);
    for case in 0..CASES {
        let a = uniform(&mut rng, -8.0, 4.0);
        let b = uniform(&mut rng, -12.0, 12.0);
        let c = uniform(&mut rng, -12.0, 2.0);
        let fam = QuadraticFamily;
        let params = fam.internal_to_params(&[a, b, c]);
        // Feasible by construction.
        assert!(
            QuadraticModel::new(params[0], params[1], params[2]).is_ok(),
            "case {case}: {params:?}"
        );
        let back = fam.params_to_internal(&params).unwrap();
        let again = fam.internal_to_params(&back);
        for (x, y) in params.iter().zip(&again) {
            assert!(
                (x - y).abs() < 1e-6 * (1.0 + x.abs()),
                "case {case}: {params:?} vs {again:?}"
            );
        }
    }
}

/// Eq. 5/6: competing-risks closed forms match numerics for random
/// positive parameters.
#[test]
fn competing_risks_closed_forms() {
    let mut rng = XorShift64::new(0xA005);
    for case in 0..CASES {
        let alpha = uniform(&mut rng, 0.2, 5.0);
        let beta = uniform(&mut rng, 0.01, 2.0);
        let gamma = uniform(&mut rng, 1e-5, 0.05);
        let m = CompetingRisksModel::new(alpha, beta, gamma).unwrap();
        // Area (Eq. 6).
        let analytic = m.area(0.0, 47.0).unwrap();
        let numeric =
            resilience_math::quad::adaptive_simpson(|t| m.predict(t), 0.0, 47.0, 1e-10, 40)
                .unwrap();
        assert!(
            (analytic - numeric).abs() < 1e-6 * (1.0 + analytic.abs()),
            "case {case}: analytic {analytic} vs numeric {numeric}"
        );
        // Recovery time (Eq. 5) for a reachable level.
        let level = m.minimum() + 0.5 * (alpha - m.minimum()).abs() + 1e-6;
        if let Ok(t_r) = m.recovery_time(level) {
            assert!(
                (m.predict(t_r) - level).abs() < 1e-6 * (1.0 + level),
                "case {case}"
            );
        }
    }
}

/// Mixture models always start at the nominal level 1 for trends that
/// vanish (or equal 1) at t = 0.
#[test]
fn mixture_starts_at_nominal() {
    let mut rng = XorShift64::new(0xA006);
    for case in 0..CASES {
        let rate1 = uniform(&mut rng, 0.01, 2.0);
        let rate2 = uniform(&mut rng, 0.01, 2.0);
        let beta = uniform(&mut rng, 0.01, 2.0);
        for trend in [Trend::Logarithmic, Trend::Linear] {
            let m = MixtureModel::new(
                ComponentKind::Exponential,
                vec![rate1],
                ComponentKind::Exponential,
                vec![rate2],
                trend,
                beta,
            )
            .unwrap();
            assert!((m.predict(0.0) - 1.0).abs() < 1e-12, "case {case}");
        }
    }
}

/// Metric identities hold for arbitrary observed curves: preserved +
/// lost = nominal rectangle; normalized pair sums to 1; averages are
/// consistent with totals.
#[test]
fn metric_identities() {
    let mut rng = XorShift64::new(0xA007);
    for case in 0..CASES {
        let values = uniform_vec(&mut rng, 0.5, 1.5, 12, 40);
        let series = PerformanceSeries::monthly("prop", values).unwrap();
        let n = series.len();
        let t_end = (n - 1) as f64;
        let (t_min, _) = series.trough().unwrap();
        // Keep t_min strictly interior for the weighted metric.
        let t_min = t_min.clamp(0.5, t_end - 0.5);
        let ctx = MetricContext {
            t_start: t_end - 4.0,
            t_end,
            nominal: series.value_at(t_end - 4.0).unwrap(),
            t_min,
            t_full_start: 0.0,
            weight: 0.5,
        }
        .validated()
        .unwrap();
        let preserved = actual_metric(&series, MetricKind::PerformancePreserved, &ctx).unwrap();
        let lost = actual_metric(&series, MetricKind::PerformanceLost, &ctx).unwrap();
        let rect = ctx.nominal * (ctx.t_end - ctx.t_start);
        assert!((preserved + lost - rect).abs() < 1e-9, "case {case}");
        let np = actual_metric(&series, MetricKind::NormalizedAveragePreserved, &ctx).unwrap();
        let nl = actual_metric(&series, MetricKind::NormalizedAverageLost, &ctx).unwrap();
        assert!((np + nl - 1.0).abs() < 1e-9, "case {case}");
        let avg = actual_metric(&series, MetricKind::AveragePreserved, &ctx).unwrap();
        assert!(
            (avg * (ctx.t_end - ctx.t_start) - preserved).abs() < 1e-9,
            "case {case}"
        );
    }
}

/// CSV round trips arbitrary finite series exactly enough to be
/// indistinguishable (shortest-roundtrip float formatting).
#[test]
fn csv_roundtrip() {
    let mut rng = XorShift64::new(0xA008);
    for case in 0..CASES {
        let values = uniform_vec(&mut rng, 0.0, 10.0, 2, 50);
        let series = PerformanceSeries::monthly("rt", values).unwrap();
        let mut buf = Vec::new();
        write_series(&mut buf, &series).unwrap();
        let back = read_series(buf.as_slice(), "rt").unwrap();
        assert_eq!(series.values(), back.values(), "case {case}");
        assert_eq!(series.times(), back.times(), "case {case}");
    }
}

/// Distribution sanity across random parameters: CDFs are monotone,
/// bounded, and inverse-consistent.
#[test]
fn distribution_quantile_roundtrip() {
    let mut rng = XorShift64::new(0xA009);
    for case in 0..CASES {
        let shape = uniform(&mut rng, 0.3, 5.0);
        let scale = uniform(&mut rng, 0.1, 20.0);
        let p = uniform(&mut rng, 0.01, 0.99);
        let w = Weibull::new(shape, scale).unwrap();
        let x = w.quantile(p).unwrap();
        assert!((w.cdf(x) - p).abs() < 1e-9, "case {case}");
        let e = Exponential::new(1.0 / scale).unwrap();
        let xe = e.quantile(p).unwrap();
        assert!((e.cdf(xe) - p).abs() < 1e-9, "case {case}");
        let n = Normal::new(shape, scale).unwrap();
        let xn = n.quantile(p).unwrap();
        assert!((n.cdf(xn) - p).abs() < 1e-9, "case {case}");
    }
}

/// Survival + CDF = 1 over the support for all stats distributions used
/// by the mixture layer.
#[test]
fn survival_complements_cdf() {
    let mut rng = XorShift64::new(0xA00A);
    for case in 0..CASES {
        let x = uniform(&mut rng, 0.0, 50.0);
        let k = uniform(&mut rng, 0.5, 4.0);
        let lam = uniform(&mut rng, 0.2, 10.0);
        let w = Weibull::new(k, lam).unwrap();
        assert!(
            (w.cdf(x) + w.survival(x) - 1.0).abs() < 1e-10,
            "case {case}"
        );
        let e = Exponential::new(1.0 / lam).unwrap();
        assert!(
            (e.cdf(x) + e.survival(x) - 1.0).abs() < 1e-10,
            "case {case}"
        );
    }
}

/// Crash-recovery closed forms: continuity at the kink, recovery-time
/// inversion, and area vs quadrature, across random parameters.
#[test]
fn crash_recovery_closed_forms() {
    use resilience_core::extended::CrashRecoveryModel;
    let mut rng = XorShift64::new(0xA00B);
    for case in 0..CASES {
        let t_c = uniform(&mut rng, 0.5, 10.0);
        let p_min_share = uniform(&mut rng, 0.3, 0.95);
        let p_inf = uniform(&mut rng, 0.5, 1.2);
        let rate = uniform(&mut rng, 0.01, 1.0);
        let sharpness = uniform(&mut rng, 1.0, 8.0);
        let p_min = p_inf * p_min_share;
        let m = CrashRecoveryModel::new(t_c, p_min, p_inf, rate, sharpness).unwrap();
        // Continuity at the crash time.
        assert!(
            (m.predict(t_c - 1e-9) - m.predict(t_c + 1e-9)).abs() < 1e-6,
            "case {case}"
        );
        // Recovery-time inversion for a mid-level.
        let level = p_min + 0.5 * (p_inf - p_min);
        let t_r = m.recovery_time(level).unwrap();
        assert!((m.predict(t_r) - level).abs() < 1e-9, "case {case}");
        // Area against quadrature across the kink.
        let analytic = m.area(0.0, t_c + 20.0).unwrap();
        let numeric =
            resilience_math::quad::adaptive_simpson(|t| m.predict(t), 0.0, t_c + 20.0, 1e-10, 44)
                .unwrap();
        assert!(
            (analytic - numeric).abs() < 1e-6 * (1.0 + analytic.abs()),
            "case {case}: analytic {analytic} vs numeric {numeric}"
        );
    }
}

/// Double-bathtub closed-form area matches quadrature for random
/// parameters, including windows straddling the second-episode onset.
#[test]
fn double_bathtub_area() {
    use resilience_core::extended::DoubleBathtubModel;
    let mut rng = XorShift64::new(0xA00C);
    for case in 0..CASES {
        let alpha = uniform(&mut rng, 0.3, 3.0);
        let beta = uniform(&mut rng, 0.02, 1.0);
        let gamma = uniform(&mut rng, 1e-5, 0.02);
        let depth = uniform(&mut rng, 0.005, 0.1);
        let onset = uniform(&mut rng, 5.0, 30.0);
        let width = uniform(&mut rng, 2.0, 15.0);
        let m = DoubleBathtubModel::new(alpha, beta, gamma, depth, onset, width).unwrap();
        let analytic = m.area(0.0, 47.0).unwrap();
        let numeric =
            resilience_math::quad::adaptive_simpson(|t| m.predict(t), 0.0, 47.0, 1e-10, 44)
                .unwrap();
        assert!(
            (analytic - numeric).abs() < 1e-6 * (1.0 + analytic.abs()),
            "case {case}: analytic {analytic} vs numeric {numeric}"
        );
    }
}

/// Hjorth distribution invariants across random parameters.
#[test]
fn hjorth_distribution_invariants() {
    use resilience_stats::Hjorth;
    let mut rng = XorShift64::new(0xA00D);
    for case in 0..CASES {
        let delta = uniform(&mut rng, 0.001, 0.5);
        let theta = uniform(&mut rng, 0.1, 3.0);
        let beta = uniform(&mut rng, 0.05, 2.0);
        let x = uniform(&mut rng, 0.1, 30.0);
        let h = Hjorth::new(delta, theta, beta).unwrap();
        // Survival = exp(−cumulative hazard).
        assert!(
            (h.survival(x) - (-h.cumulative_hazard(x)).exp()).abs() < 1e-10,
            "case {case}"
        );
        // Hazard is the sum of its two competing parts.
        let want = delta * x + theta / (1.0 + beta * x);
        assert!((h.hazard(x) - want).abs() < 1e-12, "case {case}");
        // CDF in [0, 1] and monotone over a step.
        let c = h.cdf(x);
        assert!((0.0..=1.0).contains(&c), "case {case}");
        assert!(h.cdf(x + 1.0) >= c, "case {case}");
    }
}

/// Nelder–Mead never returns a point worse than its starting point.
#[test]
fn nelder_mead_never_worsens() {
    use resilience_optim::nelder_mead::{NelderMead, NelderMeadConfig};
    let mut rng = XorShift64::new(0xA00E);
    for case in 0..CASES {
        let x0 = uniform_vec(&mut rng, -5.0, 5.0, 1, 4);
        let shift = uniform(&mut rng, -3.0, 3.0);
        let f = move |p: &[f64]| p.iter().map(|x| (x - shift) * (x - shift)).sum::<f64>();
        let start_value = f(&x0);
        let report = NelderMead::new(NelderMeadConfig::default())
            .minimize(&f, &x0)
            .unwrap();
        assert!(report.value <= start_value + 1e-12, "case {case}");
    }
}

/// Information criteria order models by SSE at fixed complexity.
#[test]
fn criteria_monotone_in_sse() {
    use resilience_core::selection::information_criteria;
    let mut rng = XorShift64::new(0xA00F);
    for case in 0..CASES {
        let sse1 = uniform(&mut rng, 1e-8, 1.0);
        let factor = uniform(&mut rng, 1.01, 100.0);
        let a = information_criteria(sse1, 48, 3).unwrap();
        let b = information_criteria(sse1 * factor, 48, 3).unwrap();
        assert!(a.aic < b.aic, "case {case}");
        assert!(a.aicc < b.aicc, "case {case}");
        assert!(a.bic < b.bic, "case {case}");
    }
}

/// Fitting noiseless quadratic data recovers parameters for random
/// feasible truths (an expensive case-count-limited property).
#[test]
fn fit_recovers_random_quadratic_truth() {
    let mut rng = XorShift64::new(0xA010);
    let mut tested = 0usize;
    for case in 0..64 {
        // Scale the curve into a plausible window so every truth is
        // identifiable from 40 monthly samples.
        let (alpha, beta, gamma) = quadratic_params(&mut rng);
        let m = QuadraticModel::new(alpha, beta, gamma).unwrap();
        let trough = m.trough();
        // Only test truths whose trough is inside the sampled window.
        if !(trough > 2.0 && trough < 35.0) {
            continue;
        }
        let values: Vec<f64> = (0..40).map(|i| m.predict(i as f64)).collect();
        if !values.iter().all(|v| *v > 0.0) {
            continue;
        }
        let series = PerformanceSeries::monthly("truth", values).unwrap();
        let fit = resilience_core::fit::fit_least_squares(
            &QuadraticFamily,
            &series,
            &resilience_core::fit::FitConfig::default(),
        )
        .unwrap();
        let ssy: f64 = series
            .values()
            .iter()
            .map(|v| (v - alpha) * (v - alpha))
            .sum();
        assert!(
            fit.sse < 1e-9 * (1.0 + ssy),
            "case {case}: sse = {}, truth ({alpha}, {beta}, {gamma})",
            fit.sse
        );
        tested += 1;
    }
    assert!(
        tested >= 10,
        "only {tested} feasible cases — widen the sampler"
    );
}
