//! Property-based tests (proptest) on the workspace's core invariants.

use proptest::prelude::*;
use resilience_core::bathtub::{CompetingRisksModel, QuadraticFamily, QuadraticModel};
use resilience_core::metrics::{actual_metric, MetricContext, MetricKind};
use resilience_core::mixture::{ComponentKind, MixtureModel, Trend};
use resilience_core::model::{ModelFamily, ResilienceModel};
use resilience_data::csv::{read_series, write_series};
use resilience_data::PerformanceSeries;
use resilience_stats::{ContinuousDistribution, Exponential, Normal, Weibull};

/// Strategy: feasible quadratic bathtub parameters (α, β, γ) via the
/// same (α, s, γ) construction the family uses.
fn quadratic_params() -> impl Strategy<Value = (f64, f64, f64)> {
    (0.1f64..10.0, 0.05f64..0.95, 1e-6f64..0.1).prop_map(|(alpha, s, gamma)| {
        let beta = -2.0 * (alpha * gamma).sqrt() * s;
        (alpha, beta, gamma)
    })
}

proptest! {
    /// The quadratic trough formula matches a numerical minimum.
    #[test]
    fn quadratic_trough_is_a_minimum((alpha, beta, gamma) in quadratic_params()) {
        let m = QuadraticModel::new(alpha, beta, gamma).unwrap();
        let t_d = m.trough();
        prop_assert!(t_d > 0.0);
        let p_d = m.predict(t_d);
        prop_assert!(m.predict(t_d - 0.1) >= p_d);
        prop_assert!(m.predict(t_d + 0.1) >= p_d);
        prop_assert!((m.minimum() - p_d).abs() < 1e-10);
    }

    /// Eq. 2: the closed-form recovery time satisfies P(t_r) = level and
    /// lies at/after the trough.
    #[test]
    fn quadratic_recovery_time_solves_curve(
        (alpha, beta, gamma) in quadratic_params(),
        frac in 0.01f64..0.99,
    ) {
        let m = QuadraticModel::new(alpha, beta, gamma).unwrap();
        // A level strictly between the minimum and the initial value.
        let level = m.minimum() + frac * (alpha - m.minimum());
        if level > m.minimum() {
            let t_r = m.recovery_time(level).unwrap();
            prop_assert!(t_r >= m.trough() - 1e-9);
            prop_assert!((m.predict(t_r) - level).abs() < 1e-6 * (1.0 + level.abs()));
        }
    }

    /// Eq. 3: the closed-form area equals numerical quadrature.
    #[test]
    fn quadratic_area_matches_quadrature(
        (alpha, beta, gamma) in quadratic_params(),
        span in 1.0f64..100.0,
    ) {
        let m = QuadraticModel::new(alpha, beta, gamma).unwrap();
        let analytic = m.area(0.0, span).unwrap();
        let numeric = resilience_math::quad::adaptive_simpson(
            |t| m.predict(t), 0.0, span, 1e-10, 40).unwrap();
        prop_assert!((analytic - numeric).abs() < 1e-6 * (1.0 + analytic.abs()));
    }

    /// Quadratic family: internal → external always lands in the bathtub
    /// validity region, and the roundtrip is the identity.
    #[test]
    fn quadratic_family_transform_roundtrip(
        a in -8.0f64..4.0,
        b in -12.0f64..12.0,
        c in -12.0f64..2.0,
    ) {
        let fam = QuadraticFamily;
        let params = fam.internal_to_params(&[a, b, c]);
        // Feasible by construction.
        prop_assert!(QuadraticModel::new(params[0], params[1], params[2]).is_ok());
        let back = fam.params_to_internal(&params).unwrap();
        let again = fam.internal_to_params(&back);
        for (x, y) in params.iter().zip(&again) {
            prop_assert!((x - y).abs() < 1e-6 * (1.0 + x.abs()), "{params:?} vs {again:?}");
        }
    }

    /// Eq. 5/6: competing-risks closed forms match numerics for random
    /// positive parameters.
    #[test]
    fn competing_risks_closed_forms(
        alpha in 0.2f64..5.0,
        beta in 0.01f64..2.0,
        gamma in 1e-5f64..0.05,
    ) {
        let m = CompetingRisksModel::new(alpha, beta, gamma).unwrap();
        // Area (Eq. 6).
        let analytic = m.area(0.0, 47.0).unwrap();
        let numeric = resilience_math::quad::adaptive_simpson(
            |t| m.predict(t), 0.0, 47.0, 1e-10, 40).unwrap();
        prop_assert!((analytic - numeric).abs() < 1e-6 * (1.0 + analytic.abs()));
        // Recovery time (Eq. 5) for a reachable level.
        let level = m.minimum() + 0.5 * (alpha - m.minimum()).abs() + 1e-6;
        if let Ok(t_r) = m.recovery_time(level) {
            prop_assert!((m.predict(t_r) - level).abs() < 1e-6 * (1.0 + level));
        }
    }

    /// Mixture models always start at the nominal level 1 for trends that
    /// vanish (or equal 1) at t = 0.
    #[test]
    fn mixture_starts_at_nominal(
        rate1 in 0.01f64..2.0,
        rate2 in 0.01f64..2.0,
        beta in 0.01f64..2.0,
    ) {
        for trend in [Trend::Logarithmic, Trend::Linear] {
            let m = MixtureModel::new(
                ComponentKind::Exponential, vec![rate1],
                ComponentKind::Exponential, vec![rate2],
                trend, beta,
            ).unwrap();
            prop_assert!((m.predict(0.0) - 1.0).abs() < 1e-12);
        }
    }

    /// Metric identities hold for arbitrary observed curves: preserved +
    /// lost = nominal rectangle; normalized pair sums to 1; averages are
    /// consistent with totals.
    #[test]
    fn metric_identities(values in prop::collection::vec(0.5f64..1.5, 12..40)) {
        let series = PerformanceSeries::monthly("prop", values).unwrap();
        let n = series.len();
        let t_end = (n - 1) as f64;
        let (t_min, _) = series.trough().unwrap();
        // Keep t_min strictly interior for the weighted metric.
        let t_min = t_min.clamp(0.5, t_end - 0.5);
        let ctx = MetricContext {
            t_start: t_end - 4.0,
            t_end,
            nominal: series.value_at(t_end - 4.0).unwrap(),
            t_min,
            t_full_start: 0.0,
            weight: 0.5,
        }.validated().unwrap();
        let preserved = actual_metric(&series, MetricKind::PerformancePreserved, &ctx).unwrap();
        let lost = actual_metric(&series, MetricKind::PerformanceLost, &ctx).unwrap();
        let rect = ctx.nominal * (ctx.t_end - ctx.t_start);
        prop_assert!((preserved + lost - rect).abs() < 1e-9);
        let np = actual_metric(&series, MetricKind::NormalizedAveragePreserved, &ctx).unwrap();
        let nl = actual_metric(&series, MetricKind::NormalizedAverageLost, &ctx).unwrap();
        prop_assert!((np + nl - 1.0).abs() < 1e-9);
        let avg = actual_metric(&series, MetricKind::AveragePreserved, &ctx).unwrap();
        prop_assert!((avg * (ctx.t_end - ctx.t_start) - preserved).abs() < 1e-9);
    }

    /// CSV round trips arbitrary finite series exactly enough to be
    /// indistinguishable (shortest-roundtrip float formatting).
    #[test]
    fn csv_roundtrip(values in prop::collection::vec(0.0f64..10.0, 2..50)) {
        let series = PerformanceSeries::monthly("rt", values).unwrap();
        let mut buf = Vec::new();
        write_series(&mut buf, &series).unwrap();
        let back = read_series(buf.as_slice(), "rt").unwrap();
        prop_assert_eq!(series.values(), back.values());
        prop_assert_eq!(series.times(), back.times());
    }

    /// Distribution sanity across random parameters: CDFs are monotone,
    /// bounded, and inverse-consistent.
    #[test]
    fn distribution_quantile_roundtrip(
        shape in 0.3f64..5.0,
        scale in 0.1f64..20.0,
        p in 0.01f64..0.99,
    ) {
        let w = Weibull::new(shape, scale).unwrap();
        let x = w.quantile(p).unwrap();
        prop_assert!((w.cdf(x) - p).abs() < 1e-9);
        let e = Exponential::new(1.0 / scale).unwrap();
        let xe = e.quantile(p).unwrap();
        prop_assert!((e.cdf(xe) - p).abs() < 1e-9);
        let n = Normal::new(shape, scale).unwrap();
        let xn = n.quantile(p).unwrap();
        prop_assert!((n.cdf(xn) - p).abs() < 1e-9);
    }

    /// Survival + CDF = 1 over the support for all stats distributions
    /// used by the mixture layer.
    #[test]
    fn survival_complements_cdf(x in 0.0f64..50.0, k in 0.5f64..4.0, lam in 0.2f64..10.0) {
        let w = Weibull::new(k, lam).unwrap();
        prop_assert!((w.cdf(x) + w.survival(x) - 1.0).abs() < 1e-10);
        let e = Exponential::new(1.0 / lam).unwrap();
        prop_assert!((e.cdf(x) + e.survival(x) - 1.0).abs() < 1e-10);
    }
}

proptest! {
    /// Crash-recovery closed forms: continuity at the kink, recovery-time
    /// inversion, and area vs quadrature, across random parameters.
    #[test]
    fn crash_recovery_closed_forms(
        t_c in 0.5f64..10.0,
        p_min_share in 0.3f64..0.95,
        p_inf in 0.5f64..1.2,
        rate in 0.01f64..1.0,
        sharpness in 1.0f64..8.0,
    ) {
        use resilience_core::extended::CrashRecoveryModel;
        let p_min = p_inf * p_min_share;
        let m = CrashRecoveryModel::new(t_c, p_min, p_inf, rate, sharpness).unwrap();
        // Continuity at the crash time.
        prop_assert!((m.predict(t_c - 1e-9) - m.predict(t_c + 1e-9)).abs() < 1e-6);
        // Recovery-time inversion for a mid-level.
        let level = p_min + 0.5 * (p_inf - p_min);
        let t_r = m.recovery_time(level).unwrap();
        prop_assert!((m.predict(t_r) - level).abs() < 1e-9);
        // Area against quadrature across the kink.
        let analytic = m.area(0.0, t_c + 20.0).unwrap();
        let numeric = resilience_math::quad::adaptive_simpson(
            |t| m.predict(t), 0.0, t_c + 20.0, 1e-10, 44).unwrap();
        prop_assert!((analytic - numeric).abs() < 1e-6 * (1.0 + analytic.abs()));
    }

    /// Double-bathtub closed-form area matches quadrature for random
    /// parameters, including windows straddling the second-episode onset.
    #[test]
    fn double_bathtub_area(
        alpha in 0.3f64..3.0,
        beta in 0.02f64..1.0,
        gamma in 1e-5f64..0.02,
        depth in 0.005f64..0.1,
        onset in 5.0f64..30.0,
        width in 2.0f64..15.0,
    ) {
        use resilience_core::extended::DoubleBathtubModel;
        let m = DoubleBathtubModel::new(alpha, beta, gamma, depth, onset, width).unwrap();
        let analytic = m.area(0.0, 47.0).unwrap();
        let numeric = resilience_math::quad::adaptive_simpson(
            |t| m.predict(t), 0.0, 47.0, 1e-10, 44).unwrap();
        prop_assert!((analytic - numeric).abs() < 1e-6 * (1.0 + analytic.abs()));
    }

    /// Hjorth distribution invariants across random parameters.
    #[test]
    fn hjorth_distribution_invariants(
        delta in 0.001f64..0.5,
        theta in 0.1f64..3.0,
        beta in 0.05f64..2.0,
        x in 0.1f64..30.0,
    ) {
        use resilience_stats::Hjorth;
        let h = Hjorth::new(delta, theta, beta).unwrap();
        // Survival = exp(−cumulative hazard).
        prop_assert!((h.survival(x) - (-h.cumulative_hazard(x)).exp()).abs() < 1e-10);
        // Hazard is the sum of its two competing parts.
        let want = delta * x + theta / (1.0 + beta * x);
        prop_assert!((h.hazard(x) - want).abs() < 1e-12);
        // CDF in [0, 1] and monotone over a step.
        let c = h.cdf(x);
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert!(h.cdf(x + 1.0) >= c);
    }

    /// Nelder–Mead never returns a point worse than its starting point.
    #[test]
    fn nelder_mead_never_worsens(
        x0 in prop::collection::vec(-5.0f64..5.0, 1..4),
        shift in -3.0f64..3.0,
    ) {
        use resilience_optim::nelder_mead::{NelderMead, NelderMeadConfig};
        let f = move |p: &[f64]| {
            p.iter().map(|x| (x - shift) * (x - shift)).sum::<f64>()
        };
        let start_value = f(&x0);
        let report = NelderMead::new(NelderMeadConfig::default()).minimize(&f, &x0).unwrap();
        prop_assert!(report.value <= start_value + 1e-12);
    }

    /// Information criteria order models by SSE at fixed complexity.
    #[test]
    fn criteria_monotone_in_sse(sse1 in 1e-8f64..1.0, factor in 1.01f64..100.0) {
        use resilience_core::selection::information_criteria;
        let a = information_criteria(sse1, 48, 3).unwrap();
        let b = information_criteria(sse1 * factor, 48, 3).unwrap();
        prop_assert!(a.aic < b.aic);
        prop_assert!(a.aicc < b.aicc);
        prop_assert!(a.bic < b.bic);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fitting noiseless quadratic data recovers parameters for random
    /// feasible truths (an expensive case-count-limited property).
    #[test]
    fn fit_recovers_random_quadratic_truth((alpha, beta, gamma) in quadratic_params()) {
        // Scale the curve into a plausible window so every truth is
        // identifiable from 40 monthly samples.
        let m = QuadraticModel::new(alpha, beta, gamma).unwrap();
        let trough = m.trough();
        // Only test truths whose trough is inside the sampled window.
        prop_assume!(trough > 2.0 && trough < 35.0);
        let values: Vec<f64> = (0..40).map(|i| m.predict(i as f64)).collect();
        prop_assume!(values.iter().all(|v| *v > 0.0));
        let series = PerformanceSeries::monthly("truth", values).unwrap();
        let fit = resilience_core::fit::fit_least_squares(
            &QuadraticFamily,
            &series,
            &resilience_core::fit::FitConfig::default(),
        ).unwrap();
        let ssy: f64 = series.values().iter().map(|v| (v - alpha) * (v - alpha)).sum();
        prop_assert!(fit.sse < 1e-9 * (1.0 + ssy), "sse = {}", fit.sse);
    }
}
