//! Integration tests for the workspace extensions (DESIGN.md §5): the
//! W/L-capable models, model selection, the bootstrap band, and residual
//! diagnostics — each exercised end to end on the recession data.

use resilience_core::analysis::evaluate_model;
use resilience_core::bathtub::{CompetingRisksFamily, QuadraticFamily};
use resilience_core::bootstrap::{bootstrap_band, BootstrapConfig};
use resilience_core::diagnostics::residual_diagnostics;
use resilience_core::extended::{CrashRecoveryFamily, DoubleBathtubFamily};
use resilience_core::fit::{fit_least_squares, FitConfig};
use resilience_core::model::ModelFamily;
use resilience_core::selection::{information_criteria, rank_models};
use resilience_data::recessions::Recession;

/// The double-bathtub extension substantially improves the in-sample fit
/// on the W-shaped 1980 recession relative to both paper families.
#[test]
fn double_bathtub_recovers_w_shape() {
    let series = Recession::R1980.payroll_index();
    let single = evaluate_model(&CompetingRisksFamily, &series, 5, 0.05).unwrap();
    let double = evaluate_model(&DoubleBathtubFamily, &series, 5, 0.05).unwrap();
    assert!(
        double.gof.r2_adj > single.gof.r2_adj + 0.25,
        "double {} vs single {}",
        double.gof.r2_adj,
        single.gof.r2_adj
    );
    assert!(double.gof.sse < 0.6 * single.gof.sse);
}

/// The crash-recovery extension takes 2020-21 from unfittable to nearly
/// perfect.
#[test]
fn crash_recovery_recovers_l_shape() {
    let series = Recession::R2020_21.payroll_index();
    let bathtub = evaluate_model(&CompetingRisksFamily, &series, 3, 0.05).unwrap();
    let crash = evaluate_model(&CrashRecoveryFamily, &series, 3, 0.05).unwrap();
    assert!(bathtub.gof.r2_adj < 0.5);
    assert!(crash.gof.r2_adj > 0.95, "r2 = {}", crash.gof.r2_adj);
    // And its prediction over the held-out months is better too.
    assert!(crash.gof.pmse < bathtub.gof.pmse);
}

/// AICc ranking puts a structurally-matched family first on each
/// signature data set.
#[test]
fn selection_matches_structure_to_shape() {
    let families: Vec<&dyn ModelFamily> = vec![
        &QuadraticFamily,
        &CompetingRisksFamily,
        &DoubleBathtubFamily,
        &CrashRecoveryFamily,
    ];
    let config = FitConfig::default();

    let w = Recession::R1980.payroll_index();
    let rows = rank_models(&families, &w, &config).unwrap().rows;
    assert_eq!(
        rows[0].family_name, "Double Bathtub",
        "W shape should pick the two-episode model: {rows:?}"
    );

    let l = Recession::R2020_21.payroll_index();
    let rows = rank_models(&families, &l, &config).unwrap().rows;
    assert_eq!(
        rows[0].family_name, "Crash Recovery",
        "L shape should pick the crash model: {rows:?}"
    );
}

/// Information criteria are consistent with their definitions across a
/// real fit.
#[test]
fn information_criteria_track_fit_quality() {
    let series = Recession::R1990_93.payroll_index();
    let good = fit_least_squares(&CompetingRisksFamily, &series, &FitConfig::default()).unwrap();
    let bad_sse = good.sse * 100.0;
    let good_ic = information_criteria(good.sse, series.len(), 3).unwrap();
    let bad_ic = information_criteria(bad_sse, series.len(), 3).unwrap();
    assert!(good_ic.aic < bad_ic.aic);
    assert!(good_ic.bic < bad_ic.bic);
}

/// The bootstrap prediction band is deterministic, at least as wide as
/// needed to cover most data, and wider in the extrapolation region than
/// at the training start.
#[test]
fn bootstrap_band_end_to_end() {
    let series = Recession::R1990_93.payroll_index();
    let cfg = BootstrapConfig {
        replicates: 80,
        ..BootstrapConfig::default()
    };
    let band = bootstrap_band(&QuadraticFamily, &series, &FitConfig::default(), &cfg).unwrap();
    assert!(band.replicates >= 60);
    let coverage = band.coverage(&series).unwrap();
    assert!(coverage >= 0.8, "coverage = {coverage}");
}

/// Residual diagnostics flag the W misfit that adjusted R² alone
/// understates, and clear the well-fit U case.
#[test]
fn diagnostics_separate_adequate_from_inadequate() {
    let config = FitConfig::default();

    let u = Recession::R1990_93.payroll_index();
    let u_fit = fit_least_squares(&CompetingRisksFamily, &u, &config).unwrap();
    let u_diag = residual_diagnostics(u_fit.model.as_ref(), &u).unwrap();

    let w = Recession::R1980.payroll_index();
    let w_fit = fit_least_squares(&CompetingRisksFamily, &w, &config).unwrap();
    let w_diag = residual_diagnostics(w_fit.model.as_ref(), &w).unwrap();

    assert!(
        w_diag.lag1_autocorrelation > u_diag.lag1_autocorrelation,
        "misfit must leave more residual structure: W {} vs U {}",
        w_diag.lag1_autocorrelation,
        u_diag.lag1_autocorrelation
    );
    assert!(!w_diag.looks_unstructured());
}

/// Point metrics computed from a fitted model approximate the observed
/// trough geometry on well-fit data.
#[test]
fn point_metrics_match_observed_trough() {
    use resilience_core::metrics::point_metrics;
    let series = Recession::R1990_93.payroll_index();
    let fit = fit_least_squares(&CompetingRisksFamily, &series, &FitConfig::default()).unwrap();
    let pm = point_metrics(fit.model.as_ref(), 0.0, 47.0).unwrap();
    let (t_obs, p_obs) = series.trough().unwrap();
    // The U-shaped curve has a nearly flat bottom, so the fitted trough
    // location is only weakly identified; allow a wide window.
    assert!(
        (pm.time_to_trough - t_obs).abs() <= 8.0,
        "model trough {} vs observed {}",
        pm.time_to_trough,
        t_obs
    );
    assert!((pm.robustness - p_obs / series.nominal()).abs() < 0.02);
    assert!(pm.rapidity > 0.0);
}
