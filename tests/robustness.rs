//! Failure-injection tests: pathological inputs must produce typed
//! errors (or degrade gracefully), never panics or silent garbage, at
//! every public entry point.

use resilience_core::analysis::evaluate_model;
use resilience_core::bathtub::{CompetingRisksFamily, QuadraticFamily};
use resilience_core::fit::{fit_least_squares, FitConfig};
use resilience_core::forecast::forecast;
use resilience_core::metrics::MetricContext;
use resilience_core::mixture::{ComponentKind, MixtureFamily, Trend};
use resilience_core::model::ModelFamily;
use resilience_data::csv::read_series;
use resilience_data::PerformanceSeries;

/// Series construction rejects every malformed input combination.
#[test]
fn series_construction_rejects_garbage() {
    // NaN / infinity in values.
    assert!(PerformanceSeries::monthly("x", vec![1.0, f64::NAN, 1.0]).is_err());
    assert!(PerformanceSeries::monthly("x", vec![1.0, f64::INFINITY]).is_err());
    // NaN in times.
    assert!(PerformanceSeries::new("x", vec![0.0, f64::NAN], vec![1.0, 1.0]).is_err());
    // Too short / mismatched / non-monotone.
    assert!(PerformanceSeries::monthly("x", vec![1.0]).is_err());
    assert!(PerformanceSeries::new("x", vec![0.0, 1.0, 2.0], vec![1.0, 1.0]).is_err());
    assert!(PerformanceSeries::new("x", vec![0.0, 2.0, 1.0], vec![1.0, 1.0, 1.0]).is_err());
}

/// Fitting a constant series: the bathtub families cannot represent a
/// flat line exactly (β < 0 strictly), but the pipeline must return a
/// finite fit or a typed error — not panic.
#[test]
fn fitting_constant_series_is_graceful() {
    let series = PerformanceSeries::monthly("flat", vec![1.0; 30]).unwrap();
    for fam in [&QuadraticFamily as &dyn ModelFamily, &CompetingRisksFamily] {
        match fit_least_squares(fam, &series, &FitConfig::default()) {
            Ok(fit) => {
                assert!(fit.sse.is_finite());
                assert!(fit.params.iter().all(|p| p.is_finite()));
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }
}

/// Fitting a two-point series: underdetermined for every family; must
/// error or return finite parameters.
#[test]
fn fitting_minimal_series_is_graceful() {
    let series = PerformanceSeries::monthly("tiny", vec![1.0, 0.9]).unwrap();
    for fam in [&QuadraticFamily as &dyn ModelFamily, &CompetingRisksFamily] {
        match fit_least_squares(fam, &series, &FitConfig::default()) {
            Ok(fit) => assert!(fit.params.iter().all(|p| p.is_finite())),
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }
}

/// Extreme magnitudes: values around 1e6 (an unnormalized curve) must
/// not break the pipeline.
#[test]
fn fitting_unnormalized_series_works() {
    let values: Vec<f64> = (0..40)
        .map(|i| {
            let t = i as f64;
            1.0e6 * (1.0 - 0.012 * t + 0.0004 * t * t)
        })
        .collect();
    let series = PerformanceSeries::monthly("big", values).unwrap();
    let fit = fit_least_squares(&QuadraticFamily, &series, &FitConfig::default()).unwrap();
    // Relative fit quality: SSE small compared to the scale².
    assert!(fit.sse / 1.0e12 < 1e-6, "sse = {}", fit.sse);
}

/// A sawtooth (pure noise) series: fits succeed with poor quality and
/// every reported diagnostic stays finite.
#[test]
fn fitting_noise_reports_finite_diagnostics() {
    let values: Vec<f64> = (0..48)
        .map(|i| 1.0 + if i % 2 == 0 { 0.05 } else { -0.05 })
        .collect();
    let series = PerformanceSeries::monthly("saw", values).unwrap();
    for fam in [&QuadraticFamily as &dyn ModelFamily, &CompetingRisksFamily] {
        if let Ok(eval) = evaluate_model(fam, &series, 5, 0.05) {
            assert!(eval.gof.sse.is_finite());
            assert!(eval.gof.r2_adj.is_finite());
            assert!(eval.gof.r2_adj < 0.5, "noise must not look explained");
        }
    }
}

/// Metric context validation blocks every degenerate geometry.
#[test]
fn metric_context_rejects_degenerate_geometry() {
    let base = MetricContext {
        t_start: 40.0,
        t_end: 47.0,
        nominal: 1.0,
        t_min: 10.0,
        t_full_start: 0.0,
        weight: 0.5,
    };
    assert!(base.validated().is_ok());
    for ctx in [
        MetricContext {
            t_start: 47.0,
            ..base
        }, // empty window
        MetricContext {
            t_min: 47.5,
            ..base
        }, // min past end
        MetricContext {
            t_min: -1.0,
            ..base
        }, // min before start
        MetricContext {
            weight: 0.0,
            ..base
        }, // weight boundary
        MetricContext {
            weight: 1.5,
            ..base
        }, // weight out of range
    ] {
        assert!(ctx.validated().is_err(), "{ctx:?} should be rejected");
    }
}

/// CSV parser survives hostile input without panicking.
#[test]
fn csv_parser_handles_hostile_input() {
    let cases: &[&str] = &[
        "",               // empty
        "\n\n\n",         // only blank lines
        "a,b\nc,d\n",     // all header-ish
        "0,1\n0,1\n",     // duplicate times
        "0,1\n1,1e309\n", // overflow to infinity
        "0,1\n1",         // truncated row
        "0,1,2,3\n",      // too many fields
        "🦀,🦀\n",        // non-numeric unicode
    ];
    for case in cases {
        let r = read_series(case.as_bytes(), "hostile");
        assert!(
            r.is_err(),
            "case {case:?} should fail, got {:?}",
            r.map(|s| s.len())
        );
    }
}

/// Forecasting from a series that never dips (monotone growth): the fit
/// may be poor, but forecasting must not panic and intervals must be
/// ordered.
#[test]
fn forecast_on_monotone_series_is_graceful() {
    let values: Vec<f64> = (0..30).map(|i| 1.0 + 0.002 * i as f64).collect();
    let series = PerformanceSeries::monthly("growth", values).unwrap();
    if let Ok(fc) = forecast(&CompetingRisksFamily, &series, 6, 0.05) {
        for p in &fc.points {
            assert!(p.interval.lower() <= p.interval.upper());
            assert!(p.predicted.is_finite());
        }
    }
}

/// Mixture families reject malformed parameter vectors at every entry
/// point rather than producing NaN curves.
#[test]
fn mixture_api_rejects_malformed_parameters() {
    let fam = MixtureFamily {
        f1: ComponentKind::Weibull,
        f2: ComponentKind::Exponential,
        trend: Trend::Logarithmic,
    };
    // Wrong arity.
    assert!(fam.build(&[1.0, 2.0]).is_err());
    // Negative shape.
    assert!(fam.build(&[-1.0, 2.0, 0.5, 0.1]).is_err());
    // Zero trend coefficient.
    assert!(fam.build(&[1.0, 2.0, 0.5, 0.0]).is_err());
    assert!(fam.params_to_internal(&[1.0, 2.0, 0.5, -0.1]).is_err());
}

/// Holdout geometry is validated at the analysis boundary.
#[test]
fn evaluate_model_rejects_bad_holdouts() {
    let series =
        PerformanceSeries::monthly("s", (0..10).map(|i| 1.0 - 0.01 * i as f64).collect()).unwrap();
    assert!(evaluate_model(&QuadraticFamily, &series, 0, 0.05).is_err());
    assert!(evaluate_model(&QuadraticFamily, &series, 9, 0.05).is_err());
    assert!(evaluate_model(&QuadraticFamily, &series, 100, 0.05).is_err());
}

/// Every public error type renders a useful message (non-empty, contains
/// the offending routine's context).
#[test]
fn error_messages_are_informative() {
    let e = PerformanceSeries::monthly("x", vec![1.0]).unwrap_err();
    assert!(e.to_string().len() > 10);
    let e = read_series("".as_bytes(), "x").unwrap_err();
    assert!(e.to_string().len() > 10);
    let Err(e) = QuadraticFamily.build(&[1.0, 1.0, 1.0]) else {
        panic!("β > 0 must be rejected");
    };
    assert!(e.to_string().contains("Quadratic"));
}
