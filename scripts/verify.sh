#!/usr/bin/env sh
# Full offline verification: build, tests, formatting, lints.
# Run from the repository root. Fails fast on the first broken step.
set -eu

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test -q --test fault_injection --test golden_oracle"
cargo test -q --test fault_injection --test golden_oracle

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: all checks passed"
