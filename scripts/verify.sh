#!/usr/bin/env sh
# Full offline verification: build, tests, formatting, lints.
# Run from the repository root. Fails fast on the first broken step.
#
# Test invocations run under a hard wall-clock timeout (the same
# execution-deadline discipline the library applies to itself, DESIGN.md
# §9): a hanging test kills the verification run with a clear signal
# instead of stalling CI until the job-level timeout reaps it.
set -eu

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

# Hard wall-clock caps (seconds): generous for the full suite, tight for
# the smoke suite. `timeout -k` follows the TERM with a KILL in case a
# test ignores the first signal.
TEST_TIMEOUT=1200
SMOKE_TIMEOUT=300

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace (hard cap ${TEST_TIMEOUT}s)"
timeout -k 30 "$TEST_TIMEOUT" cargo test -q --workspace

echo "==> cargo test -q --test fault_injection --test golden_oracle (hard cap ${TEST_TIMEOUT}s)"
timeout -k 30 "$TEST_TIMEOUT" cargo test -q --test fault_injection --test golden_oracle

echo "==> cargo test -q --test runtime_resilience (smoke, hard cap ${SMOKE_TIMEOUT}s)"
timeout -k 30 "$SMOKE_TIMEOUT" cargo test -q --test runtime_resilience

echo "==> telemetry smoke: traced example -> JSONL log -> fitlog replay (hard cap ${SMOKE_TIMEOUT}s)"
FITLOG_SMOKE="$(mktemp -t fitlog_smoke.XXXXXX.jsonl)"
OBS_SMOKE_DIR="$(mktemp -d -t obs_smoke.XXXXXX)"
trap 'rm -f "$FITLOG_SMOKE"; rm -rf "$OBS_SMOKE_DIR"' EXIT
FITLOG_PATH="$FITLOG_SMOKE" timeout -k 30 "$SMOKE_TIMEOUT" \
    cargo run -q --release --example traced_ranking > /dev/null
test -s "$FITLOG_SMOKE" || {
    echo "telemetry smoke: example wrote no event log" >&2
    exit 1
}
# The log must parse and replay into a report (fitlog exits non-zero on a
# malformed line), and the report must cover the example's family pool.
timeout -k 30 "$SMOKE_TIMEOUT" \
    cargo run -q --release -p resilience-bench --bin fitlog -- "$FITLOG_SMOKE" \
    | grep -q "Quadratic" || {
    echo "telemetry smoke: fitlog replay missing expected family row" >&2
    exit 1
}

echo "==> bench smoke: serial vs Fixed(2) identical + evals-per-fit ceiling (hard cap ${SMOKE_TIMEOUT}s)"
# One fast rank_models pass (DESIGN.md §11): fails when the parallel
# output is not bit-identical to the serial one, or when the median
# evals-per-fit regresses above the ceiling recorded in the bench binary.
timeout -k 30 "$SMOKE_TIMEOUT" \
    cargo run -q --release -p resilience-bench --bin bench -- --smoke

echo "==> scenario smoke: canonical scenario set deterministic + serial/parallel identical (hard cap ${SMOKE_TIMEOUT}s)"
# Generates the canonical scenario catalog twice (bit-identical series),
# then ranks each series serially and with Fixed(2) workers (identical
# rankings) — the scenario-engine determinism contract end to end.
timeout -k 30 "$SMOKE_TIMEOUT" \
    cargo run -q --release -p resilience-bench --bin bench -- --scenario-smoke

echo "==> fleet smoke: 64-cell grid, double-run + serial/Fixed(2) identity gates (hard cap ${SMOKE_TIMEOUT}s)"
# Runs the CI fleet three times (serial ×2, Fixed(2) ×1) and fails unless
# the columnar results stores and obs roll-ups are byte-identical across
# all runs; regenerates BENCH_fleet.json, which is a pure function of the
# grid — `git diff` must stay clean after this step.
timeout -k 30 "$SMOKE_TIMEOUT" \
    cargo run -q --release -p resilience-bench --bin bench -- fleet --fleet-smoke

echo "==> chaos smoke: 64-cell grid under the fixed chaos plan, supervisor gates (hard cap ${SMOKE_TIMEOUT}s)"
# Runs the CI fleet three times (serial ×2, Fixed(2) ×1) under the fixed
# fault-injection plan with the circuit breaker armed (DESIGN.md §14).
# Fails unless: no cell aborts the fleet, every non-quarantined cell has
# a finite winning fit, the stores AND the raw event JSONL are
# byte-identical across all three runs, injections are exactly accounted
# in counters, and retries stay under the policy ceiling. Regenerates
# BENCH_chaos.json — a pure function of the grid and the plan.
timeout -k 30 "$SMOKE_TIMEOUT" \
    cargo run -q --release -p resilience-bench --bin bench -- fleet --chaos-smoke

echo "==> obs smoke: observability gates + obsctl end-to-end (hard cap ${SMOKE_TIMEOUT}s)"
# Runs the CI fleet three times through the observability gates
# (DESIGN.md §15): the JSONL logs, span-tree renders, metrics
# expositions, and stores must be byte-identical across serial ×2 and
# Fixed(2), every evaluation must be attributed to a cell, and each
# family must stay under its committed evaluation ceiling. Regenerates
# BENCH_obs.json — a pure function of the grid — and drops the run's
# logs into OBS_SMOKE_DIR for the obsctl checks below.
OBS_SMOKE_DIR="$OBS_SMOKE_DIR" timeout -k 30 "$SMOKE_TIMEOUT" \
    cargo run -q --release -p resilience-bench --bin bench -- fleet --obs-smoke

# obsctl diff of the serial vs rerun logs must be empty (exit 0); a
# non-empty diff means the telemetry plane itself is nondeterministic.
timeout -k 30 "$SMOKE_TIMEOUT" \
    cargo run -q --release -p resilience-bench --bin obsctl -- diff \
    "$OBS_SMOKE_DIR/fleet_serial.jsonl" "$OBS_SMOKE_DIR/fleet_rerun.jsonl" || {
    echo "obs smoke: obsctl diff found drift between identical-config runs" >&2
    exit 1
}

# The exported metrics exposition must match the committed golden file
# byte for byte — the committed contract for dashboard scrapers.
timeout -k 30 "$SMOKE_TIMEOUT" \
    cargo run -q --release -p resilience-bench --bin obsctl -- export \
    "$OBS_SMOKE_DIR/fleet_serial.jsonl" > "$OBS_SMOKE_DIR/export.prom"
cmp "$OBS_SMOKE_DIR/export.prom" tests/golden/obs_smoke_metrics.prom || {
    echo "obs smoke: metrics exposition drifted from tests/golden/obs_smoke_metrics.prom" >&2
    echo "(regenerate with: obsctl export <smoke log> > tests/golden/obs_smoke_metrics.prom)" >&2
    exit 1
}

# Span-tree and top-K queries run end-to-end on the real log.
timeout -k 30 "$SMOKE_TIMEOUT" \
    cargo run -q --release -p resilience-bench --bin obsctl -- tree \
    "$OBS_SMOKE_DIR/fleet_serial.jsonl" --depth 1 \
    | grep -q "^fleet: 64 cells" || {
    echo "obs smoke: obsctl tree did not reconstruct the 64-cell fleet" >&2
    exit 1
}
timeout -k 30 "$SMOKE_TIMEOUT" \
    cargo run -q --release -p resilience-bench --bin obsctl -- top \
    "$OBS_SMOKE_DIR/fleet_serial.jsonl" --limit 3 \
    | grep -q "hottest cells by evals:" || {
    echo "obs smoke: obsctl top produced no ranking" >&2
    exit 1
}

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: all checks passed"
